"""RDBMS-backed WalkSAT — the paper's Tuffy-mm variant (Appendix B.2).

When the ground MRF does not fit in main memory, Tuffy falls back to running
the search *inside* the RDBMS.  The paper reports that this is three to five
orders of magnitude slower per flip (Table 3), because every step performs
random accesses to on-disk clause and atom data, each paying page-I/O and
MVCC overhead.

This implementation reproduces that architecture against the embedded
engine: the clause table and the atom assignment table live in the storage
manager, and each WalkSAT step

* scans the clause table to find the violated clauses (sequential page
  reads charged to the simulated clock),
* evaluates candidate flips by re-reading the affected clauses (random page
  reads), and
* writes the flipped atom back (a random page write).

Correctness is identical to the in-memory search (same algorithm, same
RNG); only the charged cost differs, which is exactly the comparison the
paper makes.  (The Python-side bookkeeping reuses the flat-array
:class:`~repro.inference.state.SearchState` kernel plus a precomputed
atom -> clause index, so the *wall-clock* cost of simulating the slow
architecture no longer scales with the full clause table per flip — the
simulated clock still charges the scans and random page reads the on-disk
architecture would pay.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.grounding.clause_table import GroundClauseStore
from repro.inference.state import make_search_state
from repro.inference.tracing import TimeCostTrace
from repro.inference.walksat import WalkSATOptions, WalkSATResult
from repro.mrf.graph import MRF
from repro.rdbms.database import Database
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType
from repro.utils.clock import SimulatedClock, WallClock
from repro.utils.rng import RandomSource

ATOM_TABLE = "search_atoms"
CLAUSE_TABLE = "search_clauses"


@dataclass
class _StoredClause:
    """Location and content of one clause row in the storage manager."""

    page: int
    slot: int
    literals: Tuple[int, ...]
    weight: float
    is_hard: bool


class RDBMSWalkSAT:
    """WalkSAT whose working state lives in the relational storage layer."""

    def __init__(
        self,
        database: Optional[Database] = None,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.database = database or Database()
        self.options = options or WalkSATOptions(max_flips=1_000, trace_label="tuffy-mm")
        self.rng = rng or RandomSource(0)
        self.clock: SimulatedClock = self.database.clock

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> WalkSATResult:
        wall = WallClock()
        atom_locations, clause_rows = self._load_tables(mrf)
        assignment = {atom_id: False for atom_id in mrf.atom_ids}
        if initial_assignment:
            for atom_id, value in initial_assignment.items():
                if atom_id in assignment:
                    assignment[atom_id] = bool(value)

        hard_penalty = max(
            10.0 * sum(abs(c.weight) for c in mrf.clauses if not c.is_hard), 10.0
        )
        # The in-memory kernel mirrors the on-disk state so the Python-side
        # bookkeeping is incremental; the *simulated* clock is still charged
        # exactly what the on-disk architecture would pay (full sequential
        # clause scans per step, random page reads per candidate flip).
        state = make_search_state(
            mrf, assignment, hard_penalty=hard_penalty,
            backend=self.options.kernel_backend,
        )
        page_count = len({clause.page for clause in clause_rows})
        atom_clause_index: Dict[int, List[int]] = {atom_id: [] for atom_id in mrf.atom_ids}
        for index, clause in enumerate(clause_rows):
            for atom_id in sorted({abs(literal) for literal in clause.literals}):
                if atom_id in atom_clause_index:
                    atom_clause_index[atom_id].append(index)
        atom_page_counts = {
            atom_id: len({clause_rows[i].page for i in indices})
            for atom_id, indices in atom_clause_index.items()
        }

        trace = TimeCostTrace(self.options.trace_label)
        best_cost = math.inf
        best_assignment = dict(assignment)
        flips = 0
        options = self.options

        for _try in range(options.max_tries):
            if options.random_restarts and initial_assignment is None:
                for atom_id in assignment:
                    assignment[atom_id] = self.rng.coin()
                state.reset(assignment)
            for _flip in range(options.max_flips):
                if options.deadline_seconds is not None and self.clock.now() >= options.deadline_seconds:
                    break
                # One pass over the on-disk clause table (sequential reads).
                self.clock.charge("sequential_page_read", count=page_count)
                cost = state.cost
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = dict(assignment)
                    trace.record_improvement(self.clock.now(), best_cost, flips)
                if options.target_cost is not None and best_cost <= options.target_cost:
                    break
                if not state.has_violations():
                    break
                # Violated rows in clause-table order, as the scan produced.
                violated = [
                    clause_rows[i] for i in sorted(state.violated_clause_indices())
                ]
                clause = self.rng.pick(violated)
                atom_id = self._choose_atom(
                    clause, clause_rows, assignment, hard_penalty,
                    atom_clause_index, atom_page_counts,
                )
                assignment[atom_id] = not assignment[atom_id]
                state.flip_atom_id(atom_id)
                self._write_atom(atom_locations[atom_id], atom_id, assignment[atom_id])
                flips += 1
                self.clock.charge("rdbms_flip_overhead")
            if options.target_cost is not None and best_cost <= options.target_cost:
                break
            # A deadline hit mid-try must also stop the restart loop; the
            # simulated clock never rolls back, so later tries could only
            # burn further past the deadline.
            if (
                options.deadline_seconds is not None
                and self.clock.now() >= options.deadline_seconds
            ):
                break

        # Account for the final state as well.
        self.clock.charge("sequential_page_read", count=page_count)
        if state.cost < best_cost:
            best_cost = state.cost
            best_assignment = dict(assignment)
            trace.record_improvement(self.clock.now(), best_cost, flips)

        return WalkSATResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            flips=flips,
            tries=1,
            seconds=wall.elapsed(),
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Storage interaction
    # ------------------------------------------------------------------

    def _load_tables(
        self, mrf: MRF
    ) -> Tuple[Dict[int, Tuple[int, int]], List[_StoredClause]]:
        """Materialise the atom and clause tables in the storage manager."""
        atom_schema = TableSchema.of(("aid", ColumnType.INTEGER), ("value", ColumnType.BOOLEAN))
        clause_schema = GroundClauseStore.table_schema()
        for name, schema in ((ATOM_TABLE, atom_schema), (CLAUSE_TABLE, clause_schema)):
            if self.database.has_table(name):
                self.database.table(name).truncate()
            else:
                self.database.create_table(name, schema)

        storage = self.database.storage
        atom_locations: Dict[int, Tuple[int, int]] = {}
        atom_table = self.database.table(ATOM_TABLE)
        for atom_id in mrf.atom_ids:
            row = atom_table.schema.validate_row((atom_id, False))
            atom_table.rows.append(row)
            atom_locations[atom_id] = storage.append_row(ATOM_TABLE, row)

        clause_rows: List[_StoredClause] = []
        clause_table = self.database.table(CLAUSE_TABLE)
        for clause in mrf.clauses:
            weight = 1e300 if clause.is_hard else clause.weight
            row = clause_table.schema.validate_row(
                (
                    clause.clause_id,
                    " ".join(str(literal) for literal in clause.literals),
                    weight,
                    clause.source or "",
                )
            )
            clause_table.rows.append(row)
            page, slot = storage.append_row(CLAUSE_TABLE, row)
            clause_rows.append(
                _StoredClause(page, slot, clause.literals, clause.weight, clause.is_hard)
            )
        return atom_locations, clause_rows

    def _choose_atom(
        self,
        clause: _StoredClause,
        clause_rows: List[_StoredClause],
        assignment: Dict[int, bool],
        hard_penalty: float,
        atom_clause_index: Dict[int, List[int]],
        atom_page_counts: Dict[int, int],
    ) -> int:
        atom_ids = sorted({abs(literal) for literal in clause.literals})
        if len(atom_ids) == 1:
            return atom_ids[0]
        # Strict comparison, matching the in-memory WalkSAT noise semantics.
        if self.rng.random() < self.options.noise:
            return self.rng.pick(atom_ids)
        best_atom = atom_ids[0]
        best_delta = self._delta_cost(
            best_atom, clause_rows, assignment, hard_penalty,
            atom_clause_index, atom_page_counts,
        )
        for atom_id in atom_ids[1:]:
            delta = self._delta_cost(
                atom_id, clause_rows, assignment, hard_penalty,
                atom_clause_index, atom_page_counts,
            )
            if delta < best_delta:
                best_delta = delta
                best_atom = atom_id
        return best_atom

    def _delta_cost(
        self,
        atom_id: int,
        clause_rows: List[_StoredClause],
        assignment: Dict[int, bool],
        hard_penalty: float,
        atom_clause_index: Dict[int, List[int]],
        atom_page_counts: Dict[int, int],
    ) -> float:
        """Cost delta of flipping one atom; re-reads the clauses that mention it.

        The precomputed atom -> clause index replaces the seed's full scan of
        the clause table; the charged page reads (the pages containing the
        affected clauses) are identical.
        """
        delta = 0.0
        for index in atom_clause_index.get(atom_id, ()):
            clause = clause_rows[index]
            weight = hard_penalty if clause.is_hard else abs(clause.weight)
            before = self._violated(clause, assignment)
            assignment[atom_id] = not assignment[atom_id]
            after = self._violated(clause, assignment)
            assignment[atom_id] = not assignment[atom_id]
            if before and not after:
                delta -= weight
            elif not before and after:
                delta += weight
        # Random reads of the pages containing the affected clauses.
        self.clock.charge("page_read", count=atom_page_counts.get(atom_id, 0))
        return delta

    @staticmethod
    def _violated(clause: _StoredClause, assignment: Dict[int, bool]) -> bool:
        satisfied = any(
            assignment.get(abs(literal), False) == (literal > 0)
            for literal in clause.literals
        )
        return satisfied if clause.weight < 0 else not satisfied

    def _write_atom(self, location: Tuple[int, int], atom_id: int, value: bool) -> None:
        page, slot = location
        self.database.storage.write_row(ATOM_TABLE, page, slot, (atom_id, value))
