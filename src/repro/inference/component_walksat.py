"""Component-aware WalkSAT (paper, Section 3.3).

Because the cost function decomposes over the connected components of the
MRF, it suffices to minimise each component independently; the paper shows
(Theorem 3.1) that doing so can be exponentially faster than running one
search over the whole graph, because a monolithic search keeps "breaking"
already-optimal components.

``ComponentAwareWalkSAT`` runs WalkSAT on each component with a weighted
round-robin flip budget, keeps the best state found *per component*, and
combines them into a global assignment.  Component tasks run behind the
``parallel_backend`` seam (``auto`` | ``serial`` | ``threads`` |
``processes``, see :mod:`repro.parallel`): each component's search draws
its RNG from a stream derived only from the run seed and the component
index, so the merged result is bit-for-bit identical on every backend,
dispatch mode and worker count — including deadline-bounded runs, whose
skipped set is decided by post-hoc bookkeeping over the simulated
per-component costs rather than by wave membership.  The ``processes``
backend ships component structure through shared memory and searches on
all cores (the real Table 7 parallelism), shipping results back through
a shared-memory result region; results carry wall-clock and simulated
timings either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.inference.scheduling import (
    ParallelOutcome,
    run_components,
    weighted_flip_allocation,
)
from repro.inference.state import SearchState, make_search_state
from repro.inference.tracing import FlipRateMeter, TimeCostTrace
from repro.inference.walksat import WalkSATOptions, WalkSATResult
from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.graph import MRF
from repro.utils.clock import CostModel
from repro.utils.rng import RandomSource


@dataclass
class ComponentSearchResult:
    """Combined result of the per-component searches.

    The telemetry fields (``steals``, ``worker_task_counts``,
    ``shm_shipped``, ``pickle_shipped``) are per-request — the scheduler
    counts them for exactly this run even when a shared persistent pool
    is interleaving several admitted requests.
    """

    best_assignment: Dict[int, bool]
    best_cost: float
    component_results: List[WalkSATResult]
    flips: int
    wall_seconds: float
    simulated_seconds: float
    parallel_simulated_seconds: float
    trace: TimeCostTrace = field(default_factory=TimeCostTrace)
    skipped_components: List[int] = field(default_factory=list)
    steals: int = 0
    worker_task_counts: Dict[int, int] = field(default_factory=dict)
    shm_shipped: int = 0
    pickle_shipped: int = 0

    @property
    def component_count(self) -> int:
        return len(self.component_results)

    @property
    def flips_per_second(self) -> float:
        return FlipRateMeter(self.flips, self.wall_seconds).flips_per_second


class ComponentAwareWalkSAT:
    """Runs WalkSAT independently on each component of the MRF."""

    def __init__(
        self,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
        workers: int = 1,
        cost_model: Optional[CostModel] = None,
        parallel_backend: str = "auto",
        dispatch: str = "steal",
        tracer=None,
        metrics=None,
    ) -> None:
        from repro.obs.tracer import NullTracer

        self.options = options or WalkSATOptions()
        self.rng = rng or RandomSource(0)
        self.workers = workers
        self.cost_model = cost_model or CostModel()
        self.parallel_backend = parallel_backend
        self.dispatch = dispatch
        #: Injected observability (never module-global): read-side only,
        #: so a recording tracer is bit-identical to the default no-op.
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        # State-reuse lifecycle: one kernel state per component, cached with
        # the decomposition and reset in place between rounds, instead of
        # rebuilding every buffer each run() call.  Keyed by the identity of
        # the last source (which also pins the component MRFs alive);
        # assumes, like MRF.flat_view, that sources are not mutated.  The
        # processes backend keeps the equivalent cache inside each worker.
        self._cached_source: Optional[object] = None
        self._cached_components: List[MRF] = []
        self._cached_states: List[SearchState] = []

    def run(
        self,
        source: MRF | ComponentDecomposition | Sequence[MRF],
        total_flips: Optional[int] = None,
        initial_assignment: Optional[Mapping[int, bool]] = None,
        pool=None,
        local_states: Optional[Sequence[SearchState]] = None,
        request_id: int = 0,
    ) -> ComponentSearchResult:
        """Search every component and merge the per-component best states.

        ``pool`` lends a caller-owned persistent worker pool (the engine
        session's) to the ``processes`` backend; see
        :func:`repro.inference.scheduling.run_components`.

        ``local_states`` supplies caller-owned kernel states (one per
        component) for the in-process backends — the engine session
        passes a checked-out lease here so two concurrently admitted
        requests never run on the same live :class:`SearchState`; when
        omitted, this instance's own per-component cache is used (safe
        because the session builds one searcher per request).
        ``request_id`` tags the tasks so a shared pool routes
        completions back to this request.
        """
        from repro.parallel.merge import merge_walksat_results
        from repro.parallel.pool import ComponentOutcome, ComponentTask

        components = self._components(source)
        budget = total_flips if total_flips is not None else self.options.max_flips
        allocation = weighted_flip_allocation(components, budget)

        tasks: List[ComponentTask] = []
        for index, (component, flips) in enumerate(zip(components, allocation)):
            tasks.append(
                ComponentTask(
                    index=index,
                    kind="walksat",
                    seed=self.rng.spawn(index + 1).seed,
                    walksat=self._component_options(index, flips),
                    cost_model=self.cost_model,
                    initial_assignment=self._restricted(component, initial_assignment),
                )
            )

        def placeholder(index: int) -> ComponentOutcome:
            # A component the deadline kept from dispatching contributes its
            # initial (reset) state: zero flips, zero tries, no randomness.
            state = make_search_state(
                components[index],
                tasks[index].initial_assignment,
                backend=self.options.kernel_backend,
            )
            result = WalkSATResult(
                best_assignment=state.assignment_dict(),
                best_cost=state.cost,
                flips=0,
                tries=0,
                seconds=0.0,
            )
            return ComponentOutcome(index, result, 0.0)

        with self.tracer.span(
            "dispatch", components=len(components), mode=self.dispatch
        ):
            outcome: ParallelOutcome = run_components(
                components,
                tasks,
                parallel_backend=self.parallel_backend,
                workers=self.workers,
                deadline_seconds=self.options.deadline_seconds,
                # Lazy: built (and cached) only when the resolved backend runs
                # in-process — the processes backend caches states per worker.
                local_states=(
                    local_states
                    if local_states is not None
                    else lambda: self._component_states(components)
                ),
                placeholder=placeholder,
                pool=pool,
                dispatch=self.dispatch,
                request_id=request_id,
                tracer=self.tracer,
                metrics=self.metrics,
            )

        component_results: List[WalkSATResult] = list(outcome.results)  # type: ignore[arg-type]
        with self.tracer.span("merge", components=len(component_results)):
            best_assignment, best_cost, total_flips_done, trace = merge_walksat_results(
                component_results, trace_label="tuffy"
            )
        return ComponentSearchResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            component_results=component_results,
            flips=total_flips_done,
            wall_seconds=outcome.wall_seconds,
            simulated_seconds=outcome.sequential_simulated_seconds,
            parallel_simulated_seconds=outcome.parallel_simulated_seconds,
            trace=trace,
            skipped_components=list(getattr(outcome, "skipped", [])),
            steals=int(getattr(outcome, "steals", 0)),
            worker_task_counts=dict(getattr(outcome, "worker_task_counts", {})),
            shm_shipped=int(getattr(outcome, "shm_shipped", 0)),
            pickle_shipped=int(getattr(outcome, "pickle_shipped", 0)),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _components(
        self, source: MRF | ComponentDecomposition | Sequence[MRF]
    ) -> List[MRF]:
        if source is self._cached_source:
            return self._cached_components
        if isinstance(source, MRF):
            components = connected_components(source).components
        elif isinstance(source, ComponentDecomposition):
            components = list(source.components)
        else:
            components = list(source)
        self._cached_source = source
        self._cached_components = components
        self._cached_states = []
        return components

    def _component_states(self, components: Sequence[MRF]) -> List[SearchState]:
        """The cached per-component kernel states (built on first use).

        Built in the calling thread so worker tasks only ever touch their
        own, fully-constructed state.
        """
        if len(self._cached_states) != len(components):
            backend = self.options.kernel_backend
            self._cached_states = [
                make_search_state(component, backend=backend)
                for component in components
            ]
        return self._cached_states

    def _component_options(self, index: int, flips: int) -> WalkSATOptions:
        # Each component stops once it hits zero cost (its own optimum, since
        # the cost decomposes over components) unless the caller asked for an
        # explicit target, which is honored as-is per component.
        target_cost = (
            self.options.target_cost if self.options.target_cost is not None else 0.0
        )
        return WalkSATOptions(
            max_flips=max(flips, 1),
            max_tries=self.options.max_tries,
            noise=self.options.noise,
            target_cost=target_cost,
            random_restarts=self.options.random_restarts,
            flip_cost_event=self.options.flip_cost_event,
            trace_label=f"component-{index}",
            kernel_backend=self.options.kernel_backend,
        )

    @staticmethod
    def _restricted(
        component: MRF, initial_assignment: Optional[Mapping[int, bool]]
    ) -> Optional[Dict[int, bool]]:
        if not initial_assignment:
            return None
        component_atoms = set(component.atom_ids)
        return {
            atom_id: value
            for atom_id, value in initial_assignment.items()
            if atom_id in component_atoms
        }
