"""Component-aware WalkSAT (paper, Section 3.3).

Because the cost function decomposes over the connected components of the
MRF, it suffices to minimise each component independently; the paper shows
(Theorem 3.1) that doing so can be exponentially faster than running one
search over the whole graph, because a monolithic search keeps "breaking"
already-optimal components.

``ComponentAwareWalkSAT`` runs WalkSAT on each component with a weighted
round-robin flip budget, keeps the best state found *per component*, and
combines them into a global assignment.  Components can be processed in
parallel; the result carries both wall-clock and simulated timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.inference.scheduling import ParallelOutcome, run_tasks, weighted_flip_allocation
from repro.inference.state import SearchState, make_search_state
from repro.inference.tracing import TimeCostTrace, merge_traces
from repro.inference.walksat import WalkSAT, WalkSATOptions, WalkSATResult
from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.graph import MRF
from repro.utils.clock import CostModel, SimulatedClock
from repro.utils.rng import RandomSource


@dataclass
class ComponentSearchResult:
    """Combined result of the per-component searches."""

    best_assignment: Dict[int, bool]
    best_cost: float
    component_results: List[WalkSATResult]
    flips: int
    wall_seconds: float
    simulated_seconds: float
    parallel_simulated_seconds: float
    trace: TimeCostTrace = field(default_factory=TimeCostTrace)

    @property
    def component_count(self) -> int:
        return len(self.component_results)

    @property
    def flips_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.flips / self.wall_seconds


class ComponentAwareWalkSAT:
    """Runs WalkSAT independently on each component of the MRF."""

    def __init__(
        self,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
        workers: int = 1,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.options = options or WalkSATOptions()
        self.rng = rng or RandomSource(0)
        self.workers = workers
        self.cost_model = cost_model or CostModel()
        # State-reuse lifecycle: one kernel state per component, cached with
        # the decomposition and reset in place between rounds, instead of
        # rebuilding every buffer each run() call.  Keyed by the identity of
        # the last source (which also pins the component MRFs alive);
        # assumes, like MRF.flat_view, that sources are not mutated.
        self._cached_source: Optional[object] = None
        self._cached_components: List[MRF] = []
        self._cached_states: List[SearchState] = []

    def run(
        self,
        source: MRF | ComponentDecomposition | Sequence[MRF],
        total_flips: Optional[int] = None,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> ComponentSearchResult:
        """Search every component and merge the per-component best states."""
        components = self._components(source)
        states = self._component_states(components)
        budget = total_flips if total_flips is not None else self.options.max_flips
        allocation = weighted_flip_allocation(components, budget)

        tasks = []
        for index, (component, state, flips) in enumerate(
            zip(components, states, allocation)
        ):
            tasks.append(
                self._make_task(index, component, state, flips, initial_assignment)
            )
        outcome: ParallelOutcome = run_tasks(tasks, workers=self.workers)

        component_results: List[WalkSATResult] = list(outcome.results)  # type: ignore[arg-type]
        best_assignment: Dict[int, bool] = {}
        best_cost = 0.0
        total_flips_done = 0
        for result in component_results:
            best_assignment.update(result.best_assignment)
            if not math.isinf(result.best_cost):
                best_cost += result.best_cost
            total_flips_done += result.flips
        trace = merge_traces([result.trace for result in component_results], label="tuffy")
        return ComponentSearchResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            component_results=component_results,
            flips=total_flips_done,
            wall_seconds=outcome.wall_seconds,
            simulated_seconds=outcome.sequential_simulated_seconds,
            parallel_simulated_seconds=outcome.parallel_simulated_seconds,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _components(
        self, source: MRF | ComponentDecomposition | Sequence[MRF]
    ) -> List[MRF]:
        if source is self._cached_source:
            return self._cached_components
        if isinstance(source, MRF):
            components = connected_components(source).components
        elif isinstance(source, ComponentDecomposition):
            components = list(source.components)
        else:
            components = list(source)
        self._cached_source = source
        self._cached_components = components
        self._cached_states = []
        return components

    def _component_states(self, components: Sequence[MRF]) -> List[SearchState]:
        """The cached per-component kernel states (built on first use).

        Built in the calling thread so worker tasks only ever touch their
        own, fully-constructed state.
        """
        if len(self._cached_states) != len(components):
            backend = self.options.kernel_backend
            self._cached_states = [
                make_search_state(component, backend=backend)
                for component in components
            ]
        return self._cached_states

    def _make_task(
        self,
        index: int,
        component: MRF,
        state: SearchState,
        flips: int,
        initial_assignment: Optional[Mapping[int, bool]],
    ):
        # Each component stops once it hits zero cost (its own optimum, since
        # the cost decomposes over components) unless the caller asked for an
        # explicit target, which is honored as-is per component.
        target_cost = (
            self.options.target_cost if self.options.target_cost is not None else 0.0
        )
        options = WalkSATOptions(
            max_flips=max(flips, 1),
            max_tries=self.options.max_tries,
            noise=self.options.noise,
            target_cost=target_cost,
            random_restarts=self.options.random_restarts,
            flip_cost_event=self.options.flip_cost_event,
            trace_label=f"component-{index}",
            kernel_backend=self.options.kernel_backend,
        )
        rng = self.rng.spawn(index + 1)
        if initial_assignment:
            component_atoms = set(component.atom_ids)
            restricted: Optional[Dict[int, bool]] = {
                atom_id: value
                for atom_id, value in initial_assignment.items()
                if atom_id in component_atoms
            }
        else:
            restricted = None

        def task():
            clock = SimulatedClock(self.cost_model)
            searcher = WalkSAT(options, rng, clock)
            # run_on_state resets/rerandomizes the cached state in place at
            # the start of every try, so reuse is bit-for-bit identical to
            # constructing a fresh state (the parity suite pins this).
            result = searcher.run_on_state(state, restricted)
            return result, clock.now()

        return task
