"""MC-SAT marginal inference (paper, Appendix A.5).

MC-SAT is a slice sampler over possible worlds: at every step it selects a
random subset ``M`` of the ground clauses that the current world satisfies
(a clause with weight ``w > 0`` is selected with probability
``1 - exp(-w)``; hard clauses are always selected), then draws the next
world near-uniformly from the assignments satisfying every clause in ``M``
using SampleSAT.  Averaging atom truth values across samples estimates the
marginal probabilities.

Negative-weight ground clauses are handled by selecting them, when currently
*unsatisfied*, as constraints requiring the clause to stay unsatisfied — the
clause's negation, a conjunction of unit literals, is added to ``M``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.grounding.clause_table import GroundClause
from repro.inference.samplesat import SampleSAT, SampleSATOptions
from repro.inference.state import KERNEL_BACKENDS, make_search_state
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


@dataclass
class MarginalResult:
    """Estimated marginal probabilities of atoms being true."""

    probabilities: Dict[int, float]
    samples: int
    burn_in: int

    def probability(self, atom_id: int) -> float:
        return self.probabilities.get(atom_id, 0.0)

    def most_likely(self, threshold: float = 0.5) -> Dict[int, bool]:
        """Threshold the marginals into a hard assignment."""
        return {atom_id: p >= threshold for atom_id, p in self.probabilities.items()}


@dataclass
class MCSatOptions:
    """Tuning parameters for MC-SAT."""

    samples: int = 100
    burn_in: int = 10
    samplesat: SampleSATOptions = field(default_factory=SampleSATOptions)
    #: Search-kernel backend for the full-MRF satisfaction evaluator (the
    #: per-step SampleSAT states follow ``samplesat.kernel_backend``).
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("samples must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in cannot be negative")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"kernel_backend must be one of {KERNEL_BACKENDS}")


class MCSat:
    """The MC-SAT sampler."""

    def __init__(
        self,
        options: Optional[MCSatOptions] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.options = options or MCSatOptions()
        self.rng = rng or RandomSource(0)

    def run(self, mrf: MRF, initial_assignment: Optional[Mapping[int, bool]] = None) -> MarginalResult:
        """Estimate marginal probabilities of every atom in the MRF."""
        options = self.options
        sampler = SampleSAT(options.samplesat, self.rng.spawn(97))
        atom_ids = list(mrf.atom_ids)

        # Initial state: satisfy the hard clauses (the sampler treats them as
        # constraints) starting from all-false.
        hard = [clause for clause in mrf.clauses if clause.is_hard]
        current = sampler.sample(hard, atom_ids, initial_assignment)

        # One kernel state over the full MRF evaluates every clause's
        # satisfaction in a single pass per iteration (clause-by-clause
        # dict probing was the old per-step cost); on the vectorized
        # backend both the per-iteration reset and the flags scan are
        # single numpy passes.
        evaluator = make_search_state(mrf, backend=options.kernel_backend)

        true_counts: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
        kept_samples = 0
        total_iterations = options.samples + options.burn_in
        for iteration in range(total_iterations):
            evaluator.reset(current)
            constraints = self._select_clauses(
                mrf.clauses, evaluator.satisfaction_flags()
            )
            # The ideal MC-SAT step draws uniformly from the assignments
            # satisfying M, independently of the current state; starting
            # SampleSAT from a fresh random state approximates that and
            # mixes far better than warm-starting from the current world.
            current = sampler.sample(constraints, atom_ids, None)
            if iteration >= options.burn_in:
                kept_samples += 1
                for atom_id in atom_ids:
                    if current.get(atom_id, False):
                        true_counts[atom_id] += 1

        probabilities = {
            atom_id: true_counts[atom_id] / kept_samples if kept_samples else 0.0
            for atom_id in atom_ids
        }
        return MarginalResult(probabilities, kept_samples, options.burn_in)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _select_clauses(
        self, clauses: Sequence[GroundClause], satisfied_flags: Sequence[bool]
    ) -> List[GroundClause]:
        """The random clause subset M for one MC-SAT step.

        ``satisfied_flags`` gives the literal-level satisfaction of every
        clause under the current world, in clause order (as produced by
        :meth:`SearchState.satisfaction_flags`).
        """
        selected: List[GroundClause] = []
        next_id = 1
        for clause, satisfied in zip(clauses, satisfied_flags):
            if clause.is_hard and clause.weight > 0:
                selected.append(GroundClause(next_id, clause.literals, 1.0, clause.source))
                next_id += 1
                continue
            if clause.weight > 0 and satisfied:
                if self.rng.random() < 1.0 - math.exp(-clause.weight):
                    selected.append(
                        GroundClause(next_id, clause.literals, 1.0, clause.source)
                    )
                    next_id += 1
            elif clause.weight < 0 and not satisfied:
                keep_probability = 1.0 - math.exp(-abs(clause.weight))
                if math.isinf(clause.weight):
                    keep_probability = 1.0
                if self.rng.random() < keep_probability:
                    # Require the clause to remain unsatisfied: every literal
                    # must stay false, i.e. add the negation of each literal
                    # as a unit constraint.
                    for literal in clause.literals:
                        selected.append(
                            GroundClause(next_id, (-literal,), 1.0, clause.source)
                        )
                        next_id += 1
        return selected
