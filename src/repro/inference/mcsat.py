"""MC-SAT marginal inference (paper, Appendix A.5).

MC-SAT is a slice sampler over possible worlds: at every step it selects a
random subset ``M`` of the ground clauses that the current world satisfies
(a clause with weight ``w > 0`` is selected with probability
``1 - exp(-w)``; hard clauses are always selected), then draws the next
world near-uniformly from the assignments satisfying every clause in ``M``
using SampleSAT.  Averaging atom truth values across samples estimates the
marginal probabilities.

Negative-weight ground clauses are selected, when currently *unsatisfied*,
as constraints requiring the clause to stay unsatisfied — the clause's
negation, a conjunction of unit literals, is added to ``M``.  Hard clauses
of either sign are *always* constrained, without consuming randomness: a
``+inf`` clause must stay satisfied, a ``-inf`` clause must stay
unsatisfied regardless of the current world (a hard negative clause the
current world satisfies marks a zero-probability world the chain must leave,
not a constraint to drop).

Two interchangeable sampling pipelines run behind the ``kernel_backend``
seam (selected per MRF by :func:`repro.inference.state.resolve_backend`,
like every search driver):

* the **scalar loop** (:meth:`MCSat._run_scalar` + :meth:`_select_clauses`)
  — the executable specification: a Python pass over the clause list per
  iteration, dict-based world hand-off, per-atom marginal counting;
* the **vectorized pipeline** (:meth:`MCSat._run_batched`) — per-run numpy
  selection tables combined with the evaluator's satisfaction mask
  (:class:`_BatchedSelection`), pooled constraint-state construction
  (:class:`repro.inference.samplesat.ConstraintPool`), and marginal
  accumulation as one int-vector add per kept sample.

Both consume the identical RNG stream — selection draws ``rng.random()``
only for eligible clauses, in clause order — so seeded marginals are
bit-for-bit identical across backends (``tests/test_mcsat_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.grounding.clause_table import GroundClause
from repro.inference.samplesat import (
    ConstraintPool,
    SampleSAT,
    SampleSATOptions,
    hard_constraint_prefix,
)
from repro.inference.state import (
    KERNEL_BACKENDS,
    SearchState,
    make_search_state,
    resolve_backend,
)
from repro.mrf.graph import MRF
from repro.utils.rng import RandomSource


@dataclass
class MarginalResult:
    """Estimated marginal probabilities of atoms being true."""

    probabilities: Dict[int, float]
    samples: int
    burn_in: int

    def probability(self, atom_id: int) -> float:
        return self.probabilities.get(atom_id, 0.0)

    def most_likely(self, threshold: float = 0.5) -> Dict[int, bool]:
        """Threshold the marginals into a hard assignment."""
        return {atom_id: p >= threshold for atom_id, p in self.probabilities.items()}


@dataclass
class MCSatOptions:
    """Tuning parameters for MC-SAT."""

    samples: int = 100
    burn_in: int = 10
    samplesat: SampleSATOptions = field(default_factory=SampleSATOptions)
    #: Search-kernel backend for the sampling pipeline: drives both the
    #: full-MRF satisfaction evaluator and, when it resolves to
    #: ``vectorized`` for the MRF, the batched selection/accumulation
    #: pipeline (the per-step SampleSAT states follow
    #: ``samplesat.kernel_backend``).
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("samples must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in cannot be negative")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"kernel_backend must be one of {KERNEL_BACKENDS}")


class _BatchedSelection:
    """Per-run numpy tables for MC-SAT clause selection.

    Built once per :meth:`MCSat.run`: the soft clauses' parent indices,
    their signs, and their selection probabilities ``1 - exp(-|w|)``.  The
    probabilities are computed with ``math.exp`` — the same libm call the
    scalar loop makes — because ``np.exp`` may differ in the last ulp and a
    draw landing between the two values would silently fork the seeded
    stream.

    Each iteration, :meth:`select` combines the tables with the evaluator's
    satisfaction mask into the eligible set (positive and satisfied, or
    negative and unsatisfied), draws ``rng.random()`` once per eligible
    clause *in clause order* (the exact stream the scalar loop consumes),
    and returns the selected parent indices for the constraint pool.
    """

    def __init__(self, mrf: MRF) -> None:
        import numpy as np

        self._np = np
        soft_indices: List[int] = []
        positive: List[bool] = []
        probabilities: List[float] = []
        for index, clause in enumerate(mrf.clauses):
            if clause.is_hard or clause.weight == 0:
                continue
            soft_indices.append(index)
            positive.append(clause.weight > 0)
            probabilities.append(1.0 - math.exp(-abs(clause.weight)))
        self.soft_indices = np.asarray(soft_indices, dtype=np.intp)
        self.positive = np.asarray(positive, dtype=bool)
        self.probabilities = np.asarray(probabilities, dtype=np.float64)

    def select(self, rng: RandomSource, satisfied: "object") -> "object":
        """Parent indices of the selected soft clauses (ascending)."""
        np = self._np
        soft_satisfied = satisfied[self.soft_indices]
        positive = self.positive
        eligible = np.nonzero(
            (positive & soft_satisfied) | (~positive & ~soft_satisfied)
        )[0]
        count = int(eligible.size)
        if not count:
            return eligible
        rng_random = rng.raw().random
        draws = np.fromiter(
            (rng_random() for _ in range(count)), dtype=np.float64, count=count
        )
        return self.soft_indices[eligible[draws < self.probabilities[eligible]]]


class MCSat:
    """The MC-SAT sampler."""

    def __init__(
        self,
        options: Optional[MCSatOptions] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.options = options or MCSatOptions()
        self.rng = rng or RandomSource(0)

    def run_components(
        self,
        components: Sequence[MRF],
        parallel_backend: str = "auto",
        workers: int = 1,
        pool=None,
        dispatch: str = "steal",
        request_id: int = 0,
        tracer=None,
        metrics=None,
    ) -> MarginalResult:
        """Estimate marginals component by component, optionally in parallel.

        The MRF's distribution factorises over its connected components, so
        each component is an independent MC-SAT chain.  Every component
        samples on an RNG stream derived from the run seed and its index
        (``rng.spawn(index + 1)``), and each per-component run goes through
        the same per-MRF backend dispatch as :meth:`run` — so the merged
        marginals are bit-identical across ``parallel_backend`` values and
        worker counts (the parallel parity suite proves it), and the
        ``processes`` backend samples the components on all cores.
        ``request_id`` tags the tasks with the admitted session request
        they serve, so a shared persistent pool routes completions back
        to this request when several are in flight.
        """
        from repro.inference.scheduling import run_components as dispatch_components
        from repro.parallel.merge import merge_marginal_results
        from repro.parallel.pool import ComponentTask

        components = list(components)
        if len(components) == 1:
            return self.run(components[0])
        tasks = [
            ComponentTask(
                index=index,
                kind="mcsat",
                seed=self.rng.spawn(index + 1).seed,
                mcsat=self.options,
            )
            for index in range(len(components))
        ]
        outcome = dispatch_components(
            components, tasks, parallel_backend=parallel_backend, workers=workers,
            pool=pool, dispatch=dispatch, request_id=request_id,
            tracer=tracer, metrics=metrics,
        )
        return merge_marginal_results(
            outcome.results, self.options.samples, self.options.burn_in
        )

    def run(self, mrf: MRF, initial_assignment: Optional[Mapping[int, bool]] = None) -> MarginalResult:
        """Estimate marginal probabilities of every atom in the MRF."""
        options = self.options
        sampler = SampleSAT(options.samplesat, self.rng.spawn(97))
        # One kernel state over the full MRF evaluates every clause's
        # satisfaction in a single pass per iteration; on the vectorized
        # backend both the per-iteration reset and the flags scan are
        # single numpy passes.
        evaluator = make_search_state(mrf, backend=options.kernel_backend)
        if resolve_backend(mrf, options.kernel_backend) == "vectorized":
            return self._run_batched(mrf, sampler, evaluator, initial_assignment)
        return self._run_scalar(mrf, sampler, evaluator, initial_assignment)

    # ------------------------------------------------------------------
    # The scalar pipeline (executable specification)
    # ------------------------------------------------------------------

    def _run_scalar(
        self,
        mrf: MRF,
        sampler: SampleSAT,
        evaluator: SearchState,
        initial_assignment: Optional[Mapping[int, bool]],
    ) -> MarginalResult:
        options = self.options
        atom_ids = list(mrf.atom_ids)

        # Initial state: enforce the hard constraints starting from
        # ``initial_assignment`` (or all-false).
        current = sampler.sample(
            hard_constraint_prefix(mrf.clauses), atom_ids, initial_assignment
        )

        true_counts: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
        kept_samples = 0
        total_iterations = options.samples + options.burn_in
        for iteration in range(total_iterations):
            evaluator.reset(current)
            constraints = self._select_clauses(
                mrf.clauses, evaluator.satisfaction_flags()
            )
            # The ideal MC-SAT step draws uniformly from the assignments
            # satisfying M, independently of the current state; starting
            # SampleSAT from a fresh random state approximates that and
            # mixes far better than warm-starting from the current world.
            current = sampler.sample(constraints, atom_ids, None)
            if iteration >= options.burn_in:
                kept_samples += 1
                for atom_id in atom_ids:
                    if current.get(atom_id, False):
                        true_counts[atom_id] += 1

        probabilities = {
            atom_id: true_counts[atom_id] / kept_samples if kept_samples else 0.0
            for atom_id in atom_ids
        }
        return MarginalResult(probabilities, kept_samples, options.burn_in)

    # ------------------------------------------------------------------
    # The vectorized pipeline
    # ------------------------------------------------------------------

    def _run_batched(
        self,
        mrf: MRF,
        sampler: SampleSAT,
        evaluator: SearchState,
        initial_assignment: Optional[Mapping[int, bool]],
    ) -> MarginalResult:
        """The batched sampling loop: numpy selection, pooled states,
        vector accumulation.  Consumes the identical RNG stream and returns
        bit-identical probabilities to :meth:`_run_scalar`; every stage is
        a bulk operation over position-aligned buffers (the constraint
        states share the parent MRF's atom order, so worlds hand off as
        flat 0/1 buffers instead of dicts)."""
        import numpy as np

        options = self.options
        pool = ConstraintPool(mrf, sampler.options.kernel_backend)
        selection = _BatchedSelection(mrf)

        state = pool.prefix_state(initial_assignment)
        if initial_assignment is None:
            found = sampler.sample_prepared(state)
        else:
            found = sampler.run_moves(state)
        current = state.checkpoint_values() if found else state.assignment

        true_counts = np.zeros(len(mrf.atom_ids), dtype=np.int64)
        kept_samples = 0
        total_iterations = options.samples + options.burn_in
        for iteration in range(total_iterations):
            # ``current`` aliases the previous constraint state's buffer;
            # it is consumed (by the reset) before the pool may reuse and
            # rewrite that state below.
            evaluator.reset_from_values(current)
            selected = selection.select(self.rng, evaluator.satisfaction_array())
            state = pool.state_for(selected)
            found = sampler.sample_prepared(state)
            current = state.checkpoint_values() if found else state.assignment
            if iteration >= options.burn_in:
                kept_samples += 1
                true_counts += np.frombuffer(current, dtype=np.int8)

        counts = true_counts.tolist()
        probabilities = {
            atom_id: counts[index] / kept_samples if kept_samples else 0.0
            for index, atom_id in enumerate(mrf.atom_ids)
        }
        return MarginalResult(probabilities, kept_samples, options.burn_in)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _select_clauses(
        self, clauses: Sequence[GroundClause], satisfied_flags: Sequence[bool]
    ) -> List[GroundClause]:
        """The random clause subset M for one MC-SAT step (scalar spec).

        ``satisfied_flags`` gives the literal-level satisfaction of every
        clause under the current world, in clause order (as produced by
        :meth:`SearchState.satisfaction_flags`).  Hard clauses form the
        always-selected prefix and consume no randomness; soft clauses are
        then considered in clause order, drawing ``rng.random()`` once per
        eligible clause — the stream contract the batched selection
        reproduces.
        """
        selected = hard_constraint_prefix(clauses)
        next_id = len(selected) + 1
        for clause, satisfied in zip(clauses, satisfied_flags):
            weight = clause.weight
            if clause.is_hard:
                continue
            if weight > 0 and satisfied:
                if self.rng.random() < 1.0 - math.exp(-weight):
                    selected.append(
                        GroundClause(next_id, clause.literals, 1.0, clause.source)
                    )
                    next_id += 1
            elif weight < 0 and not satisfied:
                if self.rng.random() < 1.0 - math.exp(-abs(weight)):
                    # Require the clause to remain unsatisfied: every literal
                    # must stay false, i.e. add the negation of each literal
                    # as a unit constraint.
                    for literal in clause.literals:
                        selected.append(
                            GroundClause(next_id, (-literal,), 1.0, clause.source)
                        )
                        next_id += 1
        return selected
