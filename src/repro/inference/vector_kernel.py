"""Vectorized (numpy) search-kernel backend behind the ``SearchState`` API.

This is the second full kernel implementation queued up by the ROADMAP's
search-kernel line: the same WalkSAT bookkeeping as the flat-array kernel,
accelerated with numpy where batching pays, and **bit-for-bit identical** in
search semantics (``tests/test_search_kernel_parity.py`` drives both
backends and the seed reference kernel with identical seeds).

What is vectorized, and why only that:

* **Restart/reset bookkeeping.**  ``_initialise_counts`` computes every
  clause's satisfied-literal count with one ``np.bincount`` over a flat
  literal CSR and derives the violated set with one comparison, instead of
  a Python loop over every literal.  This is the dominant cost of
  ``reset``/``rerandomize`` (the state-reuse lifecycle calls them on every
  WalkSAT restart and every MC-SAT iteration).
* **Batched greedy ``delta_cost``.**  The WalkSAT greedy step evaluates the
  cost delta of every distinct atom of one violated clause.  The scalar
  kernel walks each candidate's adjacency separately; this backend batches
  all candidates into one flattened gather + ``np.bincount`` so the
  adjacency walk is shared.  Numpy dispatch overhead beats the scalar loop
  only when the batch is large: the measured crossover on this container is
  ~120 adjacency entries, so batching engages per clause only at
  ``GREEDY_MIN_ENTRIES`` and above, and the stepper falls back to the exact
  scalar loop below it.  On sparse MRFs (no clause above the threshold) the
  stepper *is* the flat kernel's stepper — zero per-step overhead.
* **Whole-state queries.**  ``satisfaction_flags`` (MC-SAT's per-iteration
  scan) and ``delta_cost_batch`` use the numpy mirrors when they are in
  sync, falling back to the scalar implementations otherwise.

Parity-critical numerics: per-candidate deltas are summed with
``np.bincount``, whose accumulation is a simple left-to-right loop in entry
order — the same float addition order as the scalar kernel.  ``np.sum`` and
``np.add.reduceat`` use pairwise summation and would *not* be bit-identical;
do not substitute them.  Non-crossing entries contribute ``±0.0``, which
never changes an IEEE-754 running sum's value.

Everything import-sensitive is gated: when numpy is missing,
``NUMPY_AVAILABLE`` is False and the factory in :mod:`repro.inference.state`
never resolves to this backend.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Mapping, Optional, Tuple

from repro.inference.state import SearchState
from repro.mrf.graph import MRF
from repro.utils import autotune
from repro.utils.rng import RandomSource

try:  # gated dependency: the container may not ship numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

NUMPY_AVAILABLE = np is not None

#: Per-clause candidate-adjacency size (sum of candidate atom degrees) at
#: which the batched numpy greedy overtakes the scalar loop.  Measured
#: crossover ~120 entries on the reference container; kept a little above
#: it so borderline clauses stay on the (predictable) scalar path, and
#: calibrated per machine by an import-time micro-probe
#: (:mod:`repro.utils.autotune`): ``REPRO_GREEDY_MIN_ENTRIES`` pins it,
#: ``REPRO_AUTOTUNE=off`` keeps the default.  Selection only — the batched
#: and scalar greedy paths are bit-identical.
GREEDY_MIN_ENTRIES = autotune.threshold("GREEDY_MIN_ENTRIES", 128)


class VectorMRFView:
    """Per-MRF numpy structure shared by every :class:`VectorSearchState`.

    Built lazily once per MRF (cached on ``mrf._vector_view``, mirroring
    ``MRF.flat_view``) and treated as read-only shared state:

    * ``lit_pos`` / ``lit_expect`` / ``lit_clause`` — the clause → literal
      relation flattened to parallel arrays (atom position, expected truth
      value for the literal to hold, owning clause index), driving the
      one-shot satisfied-count initialisation.
    * ``negated`` — per-clause "violated when satisfied" flags.
    * ``greedy_tables(min_entries)`` — per-clause batched-greedy gather
      tables for every clause whose candidate adjacency meets the
      threshold (cached per threshold; weight-dependent arrays live on the
      states, because ``hard_penalty`` differs per state).
    * ``atom_updates()`` — per-atom ``(clause_indices, signs)`` arrays for
      keeping the satisfied-count mirror in sync after a flip with one
      ``np.add.at``.
    """

    __slots__ = (
        "clause_count",
        "lit_pos",
        "lit_expect",
        "lit_clause",
        "negated",
        "_flat",
        "_greedy_tables",
        "_atom_updates",
    )

    def __init__(self, mrf: MRF) -> None:
        flat = mrf.flat_view()
        self._flat = flat
        self.clause_count = len(flat.clause_codes)

        positions: List[int] = []
        expects: List[int] = []
        owners: List[int] = []
        for clause_index, codes in enumerate(flat.clause_codes):
            for code in codes:
                if code > 0:
                    positions.append(code - 1)
                    expects.append(1)
                else:
                    positions.append(-code - 1)
                    expects.append(0)
                owners.append(clause_index)
        self.lit_pos = np.asarray(positions, dtype=np.intp)
        self.lit_expect = np.asarray(expects, dtype=np.int8)
        self.lit_clause = np.asarray(owners, dtype=np.intp)
        self.negated = np.array(
            [clause.weight < 0 for clause in mrf.clauses], dtype=bool
        )
        self._greedy_tables: Dict[int, Dict[int, tuple]] = {}
        self._atom_updates: Optional[List[Tuple["np.ndarray", "np.ndarray"]]] = None

    def greedy_tables(self, min_entries: int) -> Dict[int, tuple]:
        """Gather tables for clauses whose candidate adjacency is large.

        For each qualifying clause: ``(entry_pos, entry_expect,
        entry_clause, owner, candidate_count)`` where the entry arrays are
        the concatenated adjacency of the clause's distinct atoms (candidate
        by candidate, each candidate's entries in clause order — the same
        order the scalar loop accumulates in) and ``owner`` maps each entry
        back to its candidate slot for the ``np.bincount`` reduction.
        """
        cached = self._greedy_tables.get(min_entries)
        if cached is not None:
            return cached
        flat = self._flat
        adjacency = flat.adjacency
        tables: Dict[int, tuple] = {}
        for clause_index, candidates in enumerate(flat.clause_atom_positions):
            if len(candidates) < 2:
                continue
            total = sum(len(adjacency[position]) for position in candidates)
            if total < min_entries:
                continue
            entry_pos: List[int] = []
            entry_expect: List[int] = []
            entry_clause: List[int] = []
            owner: List[int] = []
            for slot, position in enumerate(candidates):
                for other_clause, positive in adjacency[position]:
                    entry_pos.append(position)
                    # The literal over this atom is currently true when the
                    # assignment equals the literal's polarity.
                    entry_expect.append(1 if positive else 0)
                    entry_clause.append(other_clause)
                    owner.append(slot)
            tables[clause_index] = (
                np.asarray(entry_pos, dtype=np.intp),
                np.asarray(entry_expect, dtype=np.int8),
                np.asarray(entry_clause, dtype=np.intp),
                np.asarray(owner, dtype=np.intp),
                len(candidates),
            )
        self._greedy_tables[min_entries] = tables
        return tables

    def atom_updates(self) -> List[Tuple["np.ndarray", "np.ndarray"]]:
        """Per-atom ``(clause_indices, signs)`` for the flip mirror update.

        Flipping an atom whose value was False changes each adjacent
        clause's satisfied count by ``+sign`` (``sign`` is +1 for a positive
        occurrence, -1 for a negative one); a True value changes it by
        ``-sign``.  Duplicate occurrences of the atom in one clause appear
        as separate entries, which is why the caller must apply these with
        ``np.add.at``/``np.subtract.at`` (fancy ``+=`` would drop them).
        """
        if self._atom_updates is None:
            updates = []
            for entries in self._flat.adjacency:
                indices = np.asarray(
                    [clause_index for clause_index, _positive in entries],
                    dtype=np.intp,
                )
                signs = np.asarray(
                    [1 if positive else -1 for _clause, positive in entries],
                    dtype=np.int32,
                )
                updates.append((indices, signs))
            self._atom_updates = updates
        return self._atom_updates


def vector_view(mrf: MRF) -> VectorMRFView:
    """The (cached) per-MRF numpy view; builds it on first use."""
    view = getattr(mrf, "_vector_view", None)
    if view is None:
        view = VectorMRFView(mrf)
        mrf._vector_view = view
    return view


class ConstraintVectorView(VectorMRFView):
    """A :class:`VectorMRFView` assembled from prebuilt literal arrays.

    Used by the SampleSAT constraint pool for its throwaway per-iteration
    constraint MRFs: the literal arrays are concatenated from fragments
    cached per parent clause instead of re-scanned literal by literal, and
    ``negated`` is constant (constraints are all weight-1.0 clauses).

    Batched-greedy tables are disabled: their one-time per-clause adjacency
    scan and gather-table build cannot amortize over a constraint state
    that lives for a single SampleSAT call.  Disabling them is a pure
    performance decision — the scalar greedy it falls back to is
    bit-identical (the kernel parity suite proves both paths equal).
    """

    __slots__ = ()

    def __init__(self, flat_view, lit_pos, lit_expect, lit_clause, clause_count) -> None:
        self._flat = flat_view
        self.clause_count = clause_count
        self.lit_pos = lit_pos
        self.lit_expect = lit_expect
        self.lit_clause = lit_clause
        self.negated = np.zeros(clause_count, dtype=bool)
        self._greedy_tables = {}
        self._atom_updates = None

    def greedy_tables(self, min_entries: int) -> Dict[int, tuple]:
        return {}


class VectorSearchState(SearchState):
    """Flat-array kernel with numpy-accelerated bulk paths (see module doc).

    All scalar bookkeeping (assignment buffer, satisfied-count list,
    violated set, flip journal) is inherited unchanged, so every base-class
    method keeps its exact semantics; numpy enters only through the
    overridden bulk operations and the stepper's batched greedy path.
    """

    def __init__(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
        hard_penalty: Optional[float] = None,
        greedy_min_entries: Optional[int] = None,
    ) -> None:
        if not NUMPY_AVAILABLE:  # pragma: no cover - guarded by the factory
            raise RuntimeError("VectorSearchState requires numpy")
        # Set up the shared view before super().__init__, which calls the
        # overridden _initialise_counts.
        self._vv = vector_view(mrf)
        self._greedy: Dict[int, tuple] = {}
        super().__init__(mrf, initial_assignment, hard_penalty)
        threshold = (
            GREEDY_MIN_ENTRIES if greedy_min_entries is None else greedy_min_entries
        )
        tables = self._vv.greedy_tables(threshold)
        if tables:
            abs_weight = np.frombuffer(self._abs_weight, dtype=np.float64)
            signed = np.where(self._vv.negated, -abs_weight, abs_weight)
            for clause_index, table in tables.items():
                entry_pos, entry_expect, entry_clause, owner, count = table
                entry_sw = signed[entry_clause]
                self._greedy[clause_index] = (
                    entry_pos,
                    entry_expect,
                    entry_clause,
                    owner,
                    count,
                    entry_sw,
                    -entry_sw,
                )
        self._atom_updates = self._vv.atom_updates() if self._greedy else None

    # ------------------------------------------------------------------
    # Vectorized bulk initialisation
    # ------------------------------------------------------------------

    def _initialise_counts(self) -> None:
        vv = self._vv
        # Zero-copy views over the scalar buffers (stable for the state's
        # lifetime: the lifecycle rewrites them in place, never rebinds).
        assign_np = getattr(self, "_assign_np", None)
        if assign_np is None:
            assign_np = np.frombuffer(self.assignment, dtype=np.int8)
            self._assign_np = assign_np
        if len(vv.lit_clause):
            currently_true = assign_np[vv.lit_pos] == vv.lit_expect
            counts = np.bincount(
                vv.lit_clause, weights=currently_true, minlength=vv.clause_count
            ).astype(np.int32)
        else:
            counts = np.zeros(vv.clause_count, dtype=np.int32)
        # Refill the mirror in place: live steppers hold a reference to it,
        # so restarts must not rebind (mirroring the in-place lifecycle of
        # the scalar buffers).
        mirror = getattr(self, "_sat_np", None)
        if mirror is None:
            self._sat_np = counts
        else:
            mirror[:] = counts
        self._sat_count[:] = counts.tolist()
        violated = np.nonzero((counts > 0) == vv.negated)[0]
        violated_list = self._violated_list
        violated_position = self._violated_position
        violated_list[:] = violated.tolist()
        violated_position.clear()
        violated_position.update(zip(violated_list, range(len(violated_list))))
        # Sequential left-to-right sum in clause order: parity with the
        # scalar kernel's accumulation (sum() has exactly that fast path).
        self.cost = float(sum(map(self._abs_weight.__getitem__, violated_list)))
        self._journal.clear()
        self._journal_stale = False
        self._best = array("b", self.assignment)
        # The numpy satisfied-count mirror is valid at this flip count;
        # scalar flips outside the mirror-maintaining paths invalidate it.
        self._sat_np_flips = self.flips

    def rerandomize(self, rng: RandomSource) -> None:
        """Uniformly random assignment, bulk-written through the numpy view.

        Consumes exactly one ``rng.random()`` per atom — the same underlying
        draw the scalar kernel's per-atom ``rng.coin()`` makes (``coin`` is
        ``random() < 0.5``), so seeded streams are unchanged; only the
        per-atom Python loop is replaced by one ``fromiter`` + comparison.
        """
        raw_random = rng.raw().random
        count = len(self.assignment)
        draws = np.fromiter(
            (raw_random() for _ in range(count)), dtype=np.float64, count=count
        )
        # _assign_np exists after __init__'s _initialise_counts call.
        self._assign_np[:] = draws < 0.5
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------

    def _mirror_synced(self) -> bool:
        return self._sat_np_flips == self.flips

    def flip(self, atom_position: int) -> float:
        if self._atom_updates is None:
            return super().flip(atom_position)
        value = self.assignment[atom_position]
        delta = super().flip(atom_position)
        if self._mirror_was_synced:
            indices, signs = self._atom_updates[atom_position]
            if value:
                np.subtract.at(self._sat_np, indices, signs)
            else:
                np.add.at(self._sat_np, indices, signs)
            self._sat_np_flips = self.flips
        return delta

    @property
    def _mirror_was_synced(self) -> bool:
        # After super().flip() bumped self.flips, the mirror was in sync
        # iff it matched the pre-flip count.
        return self._sat_np_flips == self.flips - 1

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------

    def satisfaction_flags(self) -> List[bool]:
        if self._mirror_synced():
            return (self._sat_np > 0).tolist()
        return super().satisfaction_flags()

    # repro: allow(seam-kernel-api): vectorized-only extension consumed by the
    # MC-SAT batched selection; flat states expose satisfaction_flags and the
    # selection pipeline feature-detects this fast path (test_mcsat_parity.py
    # pins both paths to identical streams).
    def satisfaction_array(self) -> "np.ndarray":
        """:meth:`satisfaction_flags` as a numpy bool array (fresh copy).

        The MC-SAT batched selection combines this directly with its
        per-clause eligibility masks, skipping the list materialisation.
        """
        if self._mirror_synced():
            return self._sat_np > 0
        return np.asarray(super().satisfaction_flags(), dtype=bool)

    def delta_cost_batch(self, clause_index: int) -> List[float]:
        table = self._greedy.get(clause_index)
        if table is None or not self._mirror_synced():
            return super().delta_cost_batch(clause_index)
        entry_pos, entry_expect, entry_clause, owner, count, sw, neg_sw = table
        currently_true = self._assign_np[entry_pos] == entry_expect
        crossing = self._sat_np[entry_clause] == currently_true
        contrib = np.where(currently_true, sw, neg_sw) * crossing
        return np.bincount(owner, weights=contrib, minlength=count).tolist()

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------

    def make_walksat_stepper(self, rng: RandomSource, noise: float):
        """One WalkSAT step per call, with numpy-batched greedy choices.

        On MRFs where no clause meets ``GREEDY_MIN_ENTRIES`` this returns
        the scalar kernel's stepper unchanged (same closure, same speed).
        Otherwise the returned closure is the scalar stepper plus two
        additions: qualifying clauses take the batched greedy path, and
        every flip keeps the numpy satisfied-count mirror in sync with one
        ``np.add.at``.
        """
        greedy_tables = self._greedy
        if not greedy_tables:
            return super().make_walksat_stepper(rng, noise)

        raw = rng.raw()
        getrandbits = raw.getrandbits
        rng_random = raw.random
        assignment = self.assignment
        assign_np = self._assign_np
        sat_count = self._sat_count
        sat_np = self._sat_np
        abs_weight = self._abs_weight
        negated = self._negated
        adjacency = self._adjacency
        atom_updates = self._atom_updates
        clause_positions = self._clause_positions
        violated_list = self._violated_list
        violated_position = self._violated_position
        journal = self._journal
        journal_limit = self._journal_limit
        journal_append = journal.append
        greedy_get = greedy_tables.get
        bincount = np.bincount
        where = np.where
        add_at = np.add.at
        subtract_at = np.subtract.at

        def step() -> float:
            # random.choice(violated_list), unrolled (same RNG stream as the
            # seed kernel's rng.pick).
            n = len(violated_list)
            if not n:
                raise ValueError("no violated clauses to sample")
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            clause_index = violated_list[r]
            positions = clause_positions[clause_index]
            if len(positions) == 1:
                position = positions[0]
            elif rng_random() < noise:
                # random.choice(positions), unrolled.
                n = len(positions)
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                position = positions[r]
            else:
                table = greedy_get(clause_index)
                if table is not None:
                    # Batched greedy: one shared adjacency gather for all
                    # candidates; bincount accumulates per candidate in the
                    # scalar loop's exact addition order; argmin returns the
                    # first minimum, matching "first strict minimum wins".
                    entry_pos, entry_expect, entry_clause, owner, count, sw, neg_sw = table
                    currently_true = assign_np[entry_pos] == entry_expect
                    crossing = sat_np[entry_clause] == currently_true
                    contrib = where(currently_true, sw, neg_sw) * crossing
                    deltas = bincount(owner, weights=contrib, minlength=count)
                    position = positions[int(deltas.argmin())]
                else:
                    # Inline scalar delta per candidate (clause below the
                    # batching threshold); first strict minimum wins.
                    position = positions[0]
                    best_delta = None
                    for candidate in positions:
                        value = assignment[candidate]
                        delta = 0.0
                        for other_clause, positive in adjacency[candidate]:
                            currently_true = value if positive else not value
                            if currently_true:
                                if sat_count[other_clause] == 1:
                                    if negated[other_clause]:
                                        delta -= abs_weight[other_clause]
                                    else:
                                        delta += abs_weight[other_clause]
                            elif sat_count[other_clause] == 0:
                                if negated[other_clause]:
                                    delta += abs_weight[other_clause]
                                else:
                                    delta -= abs_weight[other_clause]
                        if best_delta is None or delta < best_delta:
                            best_delta = delta
                            position = candidate

            # Inline flip (same bookkeeping and ordering as the scalar
            # kernel), plus the one-call numpy mirror update.
            value = assignment[position]
            assignment[position] = 0 if value else 1
            delta = 0.0
            for other_clause, positive in adjacency[position]:
                currently_true = value if positive else not value
                count = sat_count[other_clause]
                if currently_true:
                    sat_count[other_clause] = count - 1
                    if count == 1:
                        if negated[other_clause]:
                            spot = violated_position.pop(other_clause, None)
                            if spot is not None:
                                last = violated_list.pop()
                                if spot < len(violated_list):
                                    violated_list[spot] = last
                                    violated_position[last] = spot
                            delta -= abs_weight[other_clause]
                        else:
                            if other_clause not in violated_position:
                                violated_position[other_clause] = len(violated_list)
                                violated_list.append(other_clause)
                            delta += abs_weight[other_clause]
                else:
                    sat_count[other_clause] = count + 1
                    if count == 0:
                        if negated[other_clause]:
                            if other_clause not in violated_position:
                                violated_position[other_clause] = len(violated_list)
                                violated_list.append(other_clause)
                            delta += abs_weight[other_clause]
                        else:
                            spot = violated_position.pop(other_clause, None)
                            if spot is not None:
                                last = violated_list.pop()
                                if spot < len(violated_list):
                                    violated_list[spot] = last
                                    violated_position[last] = spot
                            delta -= abs_weight[other_clause]
            indices, signs = atom_updates[position]
            if value:
                subtract_at(sat_np, indices, signs)
            else:
                add_at(sat_np, indices, signs)
            cost = self.cost + delta
            self.cost = cost
            self.flips += 1
            self._sat_np_flips = self.flips
            if len(journal) < journal_limit:
                journal_append(position)
            else:
                self._journal_stale = True
            return cost

        return step
