"""The seed (pre-flat-array) search kernel, kept as executable specification.

:class:`ReferenceSearchState` is the list-of-tuples implementation that
:class:`repro.inference.state.SearchState` replaced.  It is retained, nearly
verbatim, for two purposes:

* the kernel-parity tests (``tests/test_search_kernel_parity.py``) drive
  both implementations with identical seeds and assert bit-for-bit equal
  costs, deltas and violated-set ordering, and
* ``benchmarks/bench_search_kernel.py`` uses it as the baseline when
  reporting the flat-array kernel's flips/sec speedup.

It implements the same public API as the flat-array kernel, including the
``checkpoint``/``checkpoint_dict`` pair — realised here the way the seed
code tracked the best assignment: a full dictionary copy per checkpoint.
Do not use it in product code paths.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.grounding.clause_table import GroundClause
from repro.inference.tracing import TimeCostTrace
from repro.inference.walksat import WalkSATOptions, WalkSATResult
from repro.mrf.graph import MRF
from repro.utils.clock import SimulatedClock, WallClock
from repro.utils.rng import RandomSource


class ReferenceSearchState:
    """The seed WalkSAT bookkeeping (lists of tuples, dict-backed sets)."""

    def __init__(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
        hard_penalty: Optional[float] = None,
    ) -> None:
        self.mrf = mrf
        self.atom_ids: List[int] = list(mrf.atom_ids)
        self._position: Dict[int, int] = {
            atom_id: index for index, atom_id in enumerate(self.atom_ids)
        }
        clause_count = len(mrf.clauses)

        soft_total = sum(abs(c.weight) for c in mrf.clauses if not c.is_hard)
        self.hard_penalty = (
            hard_penalty if hard_penalty is not None else max(10.0 * soft_total, 10.0)
        )

        self._abs_weight: List[float] = [
            self.hard_penalty if clause.is_hard else abs(clause.weight)
            for clause in mrf.clauses
        ]
        self._negated: List[bool] = [clause.weight < 0 for clause in mrf.clauses]

        self._clause_literals: List[List[Tuple[int, bool]]] = []
        for clause in mrf.clauses:
            literals = [
                (self._position[abs(literal)], literal > 0) for literal in clause.literals
            ]
            self._clause_literals.append(literals)

        self._adjacency: List[List[Tuple[int, bool]]] = [[] for _ in self.atom_ids]
        for clause_index, literals in enumerate(self._clause_literals):
            for atom_position, positive in literals:
                self._adjacency[atom_position].append((clause_index, positive))

        self.assignment: List[bool] = [False] * len(self.atom_ids)
        if initial_assignment:
            for atom_id, value in initial_assignment.items():
                position = self._position.get(atom_id)
                if position is not None:
                    self.assignment[position] = bool(value)

        self._sat_count: List[int] = [0] * clause_count
        self._violated_list: List[int] = []
        self._violated_position: Dict[int, int] = {}
        self._checkpoint_assignment: Dict[int, bool] = {}
        self.cost = 0.0
        self.flips = 0
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    def _initialise_counts(self) -> None:
        self._sat_count = [0] * len(self._clause_literals)
        self._violated_list.clear()
        self._violated_position.clear()
        self.cost = 0.0
        for clause_index, literals in enumerate(self._clause_literals):
            count = 0
            for atom_position, positive in literals:
                value = self.assignment[atom_position]
                if value == positive:
                    count += 1
            self._sat_count[clause_index] = count
            if self._is_violated(clause_index):
                self._add_violated(clause_index)
                self.cost += self._abs_weight[clause_index]
        self._checkpoint_assignment = self.assignment_dict()

    def reset(self, assignment: Optional[Mapping[int, bool]] = None) -> None:
        self.assignment = [False] * len(self.atom_ids)
        if assignment:
            for atom_id, value in assignment.items():
                position = self._position.get(atom_id)
                if position is not None:
                    self.assignment[position] = bool(value)
        self._initialise_counts()

    def randomize(self, rng: RandomSource) -> None:
        self.assignment = [rng.coin() for _ in self.atom_ids]
        self._initialise_counts()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _is_violated(self, clause_index: int) -> bool:
        satisfied = self._sat_count[clause_index] > 0
        return satisfied if self._negated[clause_index] else not satisfied

    def violated_count(self) -> int:
        return len(self._violated_list)

    def has_violations(self) -> bool:
        return bool(self._violated_list)

    def sample_violated_clause(self, rng: RandomSource) -> int:
        if not self._violated_list:
            raise ValueError("no violated clauses to sample")
        return rng.pick(self._violated_list)

    def clause_atom_positions(self, clause_index: int) -> List[int]:
        seen: List[int] = []
        for atom_position, _positive in self._clause_literals[clause_index]:
            if atom_position not in seen:
                seen.append(atom_position)
        return seen

    def atom_id_at(self, position: int) -> int:
        return self.atom_ids[position]

    def value_of(self, atom_id: int) -> bool:
        return self.assignment[self._position[atom_id]]

    def assignment_dict(self) -> Dict[int, bool]:
        return {atom_id: self.assignment[i] for i, atom_id in enumerate(self.atom_ids)}

    def true_cost(self) -> float:
        total = 0.0
        for clause_index, clause in enumerate(self.mrf.clauses):
            if self._is_violated(clause_index):
                if clause.is_hard:
                    return math.inf
                total += abs(clause.weight)
        return total

    def soft_cost(self) -> float:
        return self.cost

    # ------------------------------------------------------------------
    # Flips
    # ------------------------------------------------------------------

    def delta_cost(self, atom_position: int) -> float:
        value = self.assignment[atom_position]
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            was_violated = self._is_violated(clause_index)
            currently_true = value == positive
            new_count = self._sat_count[clause_index] + (-1 if currently_true else 1)
            satisfied = new_count > 0
            now_violated = satisfied if self._negated[clause_index] else not satisfied
            if was_violated and not now_violated:
                delta -= self._abs_weight[clause_index]
            elif not was_violated and now_violated:
                delta += self._abs_weight[clause_index]
        return delta

    def flip(self, atom_position: int) -> float:
        value = self.assignment[atom_position]
        self.assignment[atom_position] = not value
        delta = 0.0
        for clause_index, positive in self._adjacency[atom_position]:
            was_violated = self._is_violated(clause_index)
            currently_true = value == positive
            self._sat_count[clause_index] += -1 if currently_true else 1
            now_violated = self._is_violated(clause_index)
            if was_violated and not now_violated:
                self._remove_violated(clause_index)
                delta -= self._abs_weight[clause_index]
            elif not was_violated and now_violated:
                self._add_violated(clause_index)
                delta += self._abs_weight[clause_index]
        self.cost += delta
        self.flips += 1
        return delta

    def flip_atom_id(self, atom_id: int) -> float:
        return self.flip(self._position[atom_id])

    # ------------------------------------------------------------------
    # Checkpointing (seed semantics: a full copy every time)
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        self._checkpoint_assignment = self.assignment_dict()

    def checkpoint_dict(self) -> Dict[int, bool]:
        return dict(self._checkpoint_assignment)

    # ------------------------------------------------------------------
    # Violated-set maintenance
    # ------------------------------------------------------------------

    def _add_violated(self, clause_index: int) -> None:
        if clause_index in self._violated_position:
            return
        self._violated_position[clause_index] = len(self._violated_list)
        self._violated_list.append(clause_index)

    def _remove_violated(self, clause_index: int) -> None:
        position = self._violated_position.pop(clause_index, None)
        if position is None:
            return
        last = self._violated_list.pop()
        if position < len(self._violated_list):
            self._violated_list[position] = last
            self._violated_position[last] = position

    def violated_clause_indices(self) -> List[int]:
        return list(self._violated_list)

    def clause(self, clause_index: int) -> GroundClause:
        return self.mrf.clauses[clause_index]


class ReferenceWalkSAT:
    """The seed WalkSAT driver loop, kept verbatim as the benchmark baseline.

    This is the pre-flat-array ``WalkSAT.run_on_state``: per-flip wrapper
    calls (``has_violations``, ``sample_violated_clause``, deadline check)
    and a full ``assignment_dict()`` copy on every cost improvement.  Only
    the noise comparison keeps the strict ``<`` fix so a seeded run
    consumes the same RNG stream as the current driver.
    """

    def __init__(
        self,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.options = options or WalkSATOptions()
        self.rng = rng or RandomSource(0)
        self.clock = clock or SimulatedClock()

    def run(
        self,
        mrf: MRF,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> WalkSATResult:
        state = ReferenceSearchState(mrf, initial_assignment)
        return self.run_on_state(state, initial_assignment)

    def run_on_state(
        self,
        state: ReferenceSearchState,
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> WalkSATResult:
        options = self.options
        wall = WallClock()
        trace = TimeCostTrace(options.trace_label)
        best_cost = math.inf
        best_assignment: Dict[int, bool] = state.assignment_dict()
        total_flips = 0
        tries = 0
        reached_target = False
        hitting_time: Optional[int] = None

        for attempt in range(options.max_tries):
            tries += 1
            if attempt == 0:
                if initial_assignment is None and options.random_restarts:
                    state.randomize(self.rng)
                else:
                    state.reset(initial_assignment)
            elif options.random_restarts:
                state.randomize(self.rng)
            else:
                state.reset(initial_assignment)

            if state.cost < best_cost:
                best_cost = state.cost
                best_assignment = state.assignment_dict()
                trace.record_improvement(self.clock.now(), best_cost, total_flips)

            for _flip in range(options.max_flips):
                if not state.has_violations():
                    break
                if self._deadline_exceeded(options):
                    break
                clause_index = state.sample_violated_clause(self.rng)
                atom_position = self._choose_atom(state, clause_index)
                state.flip(atom_position)
                total_flips += 1
                self.clock.charge(options.flip_cost_event)
                if state.cost < best_cost:
                    best_cost = state.cost
                    best_assignment = state.assignment_dict()
                    trace.record_improvement(self.clock.now(), best_cost, total_flips)
                    if (
                        hitting_time is None
                        and options.target_cost is not None
                        and best_cost <= options.target_cost
                    ):
                        hitting_time = total_flips
                if options.target_cost is not None and best_cost <= options.target_cost:
                    reached_target = True
                    break
            if reached_target or self._deadline_exceeded(options):
                break
            if not state.has_violations():
                break

        return WalkSATResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            flips=total_flips,
            tries=tries,
            seconds=wall.elapsed(),
            trace=trace,
            reached_target=reached_target,
            hitting_time=hitting_time,
        )

    def _choose_atom(self, state: ReferenceSearchState, clause_index: int) -> int:
        positions = state.clause_atom_positions(clause_index)
        if len(positions) == 1:
            return positions[0]
        if self.rng.random() < self.options.noise:
            return self.rng.pick(positions)
        best_position = positions[0]
        best_delta = state.delta_cost(best_position)
        for position in positions[1:]:
            delta = state.delta_cost(position)
            if delta < best_delta:
                best_delta = delta
                best_position = position
        return best_position

    def _deadline_exceeded(self, options: WalkSATOptions) -> bool:
        if options.deadline_seconds is None:
            return False
        return self.clock.now() >= options.deadline_seconds
