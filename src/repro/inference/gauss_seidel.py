"""Partition-aware search via the Gauss-Seidel scheme (paper, Section 3.4).

When a single MRF component is too large for the memory budget, the
partitioner (Algorithm 3) splits it into parts that *share clauses* (the
cut).  The Gauss-Seidel scheme then iterates over the parts: part ``i`` is
searched while every other part is frozen at its current assignment, so cut
clauses become conditioned clauses over part ``i`` only.  After ``T`` rounds
the concatenation of the per-part states is returned.

This is the technique Example 2 of the paper motivates; it trades the
exponential hitting-time blow-up of a joint search for a small number of
sweeps over the parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.grounding.clause_table import GroundClause
from repro.inference.state import make_search_state
from repro.inference.tracing import TimeCostTrace
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.clock import SimulatedClock
from repro.utils.rng import RandomSource


def conditioned_mrf(
    mrf: MRF, atom_set: Set[int], assignment: Mapping[int, bool]
) -> MRF:
    """Clauses restricted to one partition, with outside atoms frozen.

    The conditioning step both the Gauss-Seidel sweeps and the parallel
    partition first pass (:func:`repro.parallel.merge.gauss_seidel_refine`)
    build their per-partition search problems from.
    """
    conditioned: List[GroundClause] = []
    next_id = 1
    for clause in mrf.clauses:
        inside = [literal for literal in clause.literals if abs(literal) in atom_set]
        if not inside:
            continue
        outside = [literal for literal in clause.literals if abs(literal) not in atom_set]
        satisfied_outside = any(
            assignment.get(abs(literal), False) == (literal > 0) for literal in outside
        )
        if satisfied_outside:
            if clause.weight >= 0:
                # Already satisfied regardless of this partition: drop it.
                continue
            # A satisfied negative-weight clause stays violated no matter
            # what this partition does; it adds a constant and is dropped.
            continue
        conditioned.append(
            GroundClause(next_id, tuple(inside), clause.weight, clause.source)
        )
        next_id += 1
    return MRF.from_clauses(conditioned, extra_atoms=atom_set)


@dataclass
class GaussSeidelResult:
    """Outcome of a Gauss-Seidel partition-aware search."""

    best_assignment: Dict[int, bool]
    best_cost: float
    rounds: int
    flips: int
    trace: TimeCostTrace = field(default_factory=TimeCostTrace)
    cut_clause_count: int = 0


class GaussSeidelSearch:
    """Coordinate-descent over MRF partitions, WalkSAT inside each part."""

    def __init__(
        self,
        options: Optional[WalkSATOptions] = None,
        rng: Optional[RandomSource] = None,
        rounds: int = 3,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        self.options = options or WalkSATOptions()
        self.rng = rng or RandomSource(0)
        self.rounds = rounds
        self.clock = clock or SimulatedClock()

    def run(
        self,
        full_mrf: MRF,
        partitions: Sequence[Sequence[int]],
        initial_assignment: Optional[Mapping[int, bool]] = None,
    ) -> GaussSeidelResult:
        """Search ``full_mrf`` using the given atom partitions.

        ``partitions`` is a list of disjoint atom-id collections covering the
        MRF's atoms (as produced by the greedy partitioner).
        """
        partition_sets = [set(partition) for partition in partitions]
        self._validate_partitions(full_mrf, partition_sets)
        assignment: Dict[int, bool] = {atom_id: False for atom_id in full_mrf.atom_ids}
        if initial_assignment:
            for atom_id, value in initial_assignment.items():
                if atom_id in assignment:
                    assignment[atom_id] = bool(value)

        cut_clauses = self._count_cut_clauses(full_mrf, partition_sets)
        trace = TimeCostTrace("gauss-seidel")
        # The global cost is maintained incrementally by a kernel state over
        # the full MRF: accepting a part's result costs
        # O(changed atoms x degree) instead of a full recount per update.
        # hard_penalty matches assignment_cost(hard_as_infinite=False).
        global_state = make_search_state(
            full_mrf,
            assignment,
            hard_penalty=1e6,
            backend=self.options.kernel_backend,
        )
        best_cost = global_state.cost
        best_assignment = dict(assignment)
        trace.record_improvement(self.clock.now(), best_cost)
        total_flips = 0

        flips_per_part = max(self.options.max_flips // max(len(partition_sets), 1), 1)
        for _round in range(self.rounds):
            for index, atom_set in enumerate(partition_sets):
                conditioned = self._conditioned_mrf(full_mrf, atom_set, assignment)
                if conditioned.clause_count == 0:
                    continue
                options = WalkSATOptions(
                    max_flips=flips_per_part,
                    max_tries=1,
                    noise=self.options.noise,
                    target_cost=0.0,
                    random_restarts=False,
                    flip_cost_event=self.options.flip_cost_event,
                    trace_label=f"partition-{index}",
                    kernel_backend=self.options.kernel_backend,
                )
                searcher = WalkSAT(options, self.rng.spawn(index + 1), self.clock)
                local_initial = {
                    atom_id: assignment[atom_id]
                    for atom_id in conditioned.atom_ids
                    if atom_id in assignment
                }
                result = searcher.run(conditioned, local_initial)
                total_flips += result.flips
                for atom_id, value in result.best_assignment.items():
                    if atom_id in atom_set and assignment[atom_id] != value:
                        assignment[atom_id] = value
                        global_state.flip_atom_id(atom_id)
                global_cost = global_state.cost
                if global_cost < best_cost:
                    best_cost = global_cost
                    best_assignment = dict(assignment)
                    trace.record_improvement(self.clock.now(), best_cost, total_flips)

        return GaussSeidelResult(
            best_assignment=best_assignment,
            best_cost=best_cost,
            rounds=self.rounds,
            flips=total_flips,
            trace=trace,
            cut_clause_count=cut_clauses,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate_partitions(self, mrf: MRF, partition_sets: Sequence[Set[int]]) -> None:
        covered: Set[int] = set()
        for atom_set in partition_sets:
            overlap = covered & atom_set
            if overlap:
                raise ValueError(f"partitions overlap on atoms {sorted(overlap)[:5]}")
            covered |= atom_set
        missing = set(mrf.atom_ids) - covered
        if missing:
            raise ValueError(
                f"partitions do not cover {len(missing)} atoms (e.g. {sorted(missing)[:5]})"
            )

    def _count_cut_clauses(self, mrf: MRF, partition_sets: Sequence[Set[int]]) -> int:
        def part_of(atom_id: int) -> int:
            for index, atom_set in enumerate(partition_sets):
                if atom_id in atom_set:
                    return index
            return -1

        count = 0
        for clause in mrf.clauses:
            parts = {part_of(atom_id) for atom_id in clause.atom_ids}
            if len(parts) > 1:
                count += 1
        return count

    def _conditioned_mrf(
        self, mrf: MRF, atom_set: Set[int], assignment: Mapping[int, bool]
    ) -> MRF:
        return conditioned_mrf(mrf, atom_set, assignment)
