"""Scheduling of per-component searches: flip allocation and parallelism.

The paper runs WalkSAT on each MRF component with a *weighted round-robin*
policy — component ``G_i`` receives ``total_flips * |G_i| / |G|`` steps — and
uses a worker pool to process loaded components in parallel (Section 3.3,
Table 7).  This module provides the flip-allocation policy, the legacy
in-process task runner with its simulated-time model of parallel execution
(so speed-ups can be reported deterministically), and
:func:`run_components` — the ``parallel_backend`` seam that hands
per-component tasks to the partition scheduler
(:mod:`repro.parallel.scheduler`), including the true multiprocess
shared-memory backend.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.mrf.graph import MRF

T = TypeVar("T")


def weighted_flip_allocation(components: Sequence[MRF], total_flips: int) -> List[int]:
    """Split a flip budget across components proportionally to their atom count.

    Largest-remainder (Hamilton) apportionment: each component's ideal
    share is ``total_flips * |G_i| / |G|``; every component gets the floor
    of its share, and the flips left over go one each to the largest
    fractional remainders (ties broken by lower index, so the result is
    deterministic).  The shares always sum to *exactly* ``total_flips`` —
    the previous per-component ``round()`` could over- or under-spend the
    budget by up to one flip per component.

    Every non-trivial component (at least one atom and one clause) is then
    guaranteed at least one flip, mirroring the weighted round-robin
    scheduling of Section 3.3; the top-up flips are taken from the largest
    shares so the total is conserved.  If the budget is smaller than the
    number of non-trivial components the guarantee is impossible; the
    components with the largest shares keep their single flips.
    """
    if total_flips <= 0:
        raise ValueError("total_flips must be positive")
    total_atoms = sum(component.atom_count for component in components)
    if total_atoms == 0:
        return [0 for _ in components]

    shares: List[int] = []
    remainders: List[Tuple[float, int]] = []
    for index, component in enumerate(components):
        ideal = total_flips * component.atom_count / total_atoms
        floor = int(ideal)
        shares.append(floor)
        # Sort key: largest remainder first, then lower index.
        remainders.append((-(ideal - floor), index))
    leftover = total_flips - sum(shares)
    for _remainder, index in sorted(remainders)[:leftover]:
        shares[index] += 1

    # Top up zero-share non-trivial components from the largest shares.  A
    # donor is any component that can spare a flip: one holding more than a
    # single flip, or a trivial component (no clauses to search) holding at
    # least one.  This makes the >=1 guarantee hold whenever
    # total_flips >= (number of non-trivial components).
    nontrivial_flags = [
        component.atom_count > 0 and component.clause_count > 0
        for component in components
    ]
    for index, is_nontrivial in enumerate(nontrivial_flags):
        if not is_nontrivial or shares[index] > 0:
            continue
        donor = max(
            (
                candidate
                for candidate in range(len(shares))
                if shares[candidate] > (1 if nontrivial_flags[candidate] else 0)
            ),
            key=lambda candidate: (shares[candidate], -candidate),
            default=None,
        )
        if donor is None:
            break
        shares[donor] -= 1
        shares[index] = 1
    return shares


@dataclass
class ParallelOutcome:
    """Results of running tasks with a (possibly simulated) worker pool."""

    results: List[object]
    wall_seconds: float
    sequential_simulated_seconds: float
    parallel_simulated_seconds: float

    @property
    def simulated_speedup(self) -> float:
        if self.parallel_simulated_seconds <= 0:
            return 1.0
        return self.sequential_simulated_seconds / self.parallel_simulated_seconds


def run_tasks(
    tasks: Sequence[Callable[[], Tuple[T, float]]],
    workers: int = 1,
) -> ParallelOutcome:
    """Run tasks, each returning ``(result, simulated_seconds)``.

    With ``workers == 1`` the tasks run sequentially in the calling thread.
    With more workers a thread pool is used (the tasks are CPU-bound Python,
    so wall-clock gains are limited by the GIL, which is why the simulated
    parallel time — longest processor assignment under list scheduling — is
    also reported and used by the benchmarks).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    from repro.utils.timer import Stopwatch

    stopwatch = Stopwatch()
    outputs: List[object] = []
    durations: List[float] = []
    with stopwatch.measure():
        if workers == 1 or len(tasks) <= 1:
            for task in tasks:
                result, simulated = task()
                outputs.append(result)
                durations.append(simulated)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(task) for task in tasks]
                for future in futures:
                    result, simulated = future.result()
                    outputs.append(result)
                    durations.append(simulated)
    sequential = sum(durations)
    parallel = _list_schedule_makespan(durations, workers)
    return ParallelOutcome(
        results=outputs,
        wall_seconds=stopwatch.total,
        sequential_simulated_seconds=sequential,
        parallel_simulated_seconds=parallel,
    )


def _list_schedule_makespan(durations: Sequence[float], workers: int) -> float:
    """Makespan of greedy list scheduling of the given task durations."""
    if not durations:
        return 0.0
    loads = [0.0] * max(workers, 1)
    for duration in sorted(durations, reverse=True):
        index = loads.index(min(loads))
        loads[index] += duration
    return max(loads)


def run_components(
    components: Sequence[MRF],
    tasks: Sequence["object"],
    parallel_backend: str = "auto",
    workers: int = 1,
    deadline_seconds: Optional[float] = None,
    local_states=None,
    placeholder: Optional[Callable[[int], object]] = None,
    pool=None,
    dispatch: str = "steal",
    stall_worker: Optional[Tuple[int, float]] = None,
    request_id: int = 0,
    tracer=None,
    metrics=None,
):
    """Run one :class:`~repro.parallel.pool.ComponentTask` per component.

    The parallel seam of the component drivers: resolves
    ``parallel_backend`` (``auto`` | ``serial`` | ``threads`` |
    ``processes``, see :func:`repro.parallel.resolve_parallel_backend`)
    and hands the tasks to the partition scheduler
    (:func:`repro.parallel.scheduler.run_component_tasks`), which
    dispatches them largest-first on the requested ``dispatch`` loop
    (``steal`` work-stealing, ``wave`` legacy barrier) and returns
    results in component order.  ``deadline_seconds`` is honored by
    post-hoc bookkeeping over the per-component simulated costs — a
    dispatch position counts iff the summed costs of the positions
    before it stay under the deadline — so the set of skipped
    components (each receiving ``placeholder(index)``) is bit-identical
    across backends, dispatch modes *and* worker counts.
    ``local_states`` may be a sequence of cached kernel states or a
    zero-arg callable building them; it is consulted only on the
    in-process backends.  ``pool`` lends a caller-owned persistent
    :class:`~repro.parallel.pool.WorkerPool` to the ``processes``
    backend (the caller keeps ownership — it is not shut down here) and
    is ignored on the other backends.  ``stall_worker`` is the
    slow-worker test hook, forwarded to the scheduler.  ``request_id``
    names the admitted session request this run serves — a shared
    persistent pool uses it to route completions back to the right
    request when several are in flight.  ``tracer`` / ``metrics`` are
    the injected observability surfaces, forwarded to the scheduler
    (no-ops when omitted; never consulted by the search itself).
    """
    from repro.parallel import resolve_parallel_backend
    from repro.parallel.scheduler import run_component_tasks

    resolved = resolve_parallel_backend(
        parallel_backend, workers=workers, task_count=len(components)
    )
    return run_component_tasks(
        components,
        tasks,
        backend=resolved,
        workers=workers,
        deadline_seconds=deadline_seconds,
        local_states=local_states,
        placeholder=placeholder,
        pool=pool,
        dispatch=dispatch,
        stall_worker=stall_worker,
        request_id=request_id,
        tracer=tracer,
        metrics=metrics,
    )
