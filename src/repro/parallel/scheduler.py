"""The partition scheduler: dispatch component tasks on a parallel backend.

This is the execution layer behind ``parallel_backend``
(:func:`repro.parallel.resolve_parallel_backend`): it takes the caller's
components (typically straight from a :class:`~repro.partitioning.loader.LoadPlan`
batch, flattened in batch order) and one :class:`ComponentTask` per
component, and runs them

* **largest-first** — components are dispatched in decreasing ``size()``
  order (ties by lower index), the classic list-scheduling heuristic the
  simulated Table 7 model already uses, so stragglers start early;
* on the resolved backend — in-process for ``serial``/``threads``
  (reusing the caller's cached kernel states), through the shared-memory
  :class:`~repro.parallel.pool.WorkerPool` for ``processes``;
* under the drivers' **deadline semantics** — when ``deadline_seconds``
  is set, dispatch happens in waves of ``workers`` tasks and stops as
  soon as the cumulative simulated time of completed components (summed
  in dispatch order, a deterministic quantity) reaches the deadline;
  undispatched components get the caller's placeholder result, exactly
  like a WalkSAT try that never starts.

Results are always returned **in component order** regardless of
completion order, and every aggregate (sequential simulated seconds,
list-scheduling makespan) is computed in the same order as the serial
path, so seeded runs are bit-for-bit identical across backends and worker
counts (``tests/test_parallel_parity.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.inference.scheduling import ParallelOutcome, _list_schedule_makespan
from repro.mrf.graph import MRF
from repro.parallel.pool import (
    ComponentOutcome,
    ComponentTask,
    WorkerPool,
    execute_component_task,
)
from repro.utils.timer import Stopwatch


class ScheduledOutcome(ParallelOutcome):
    """A :class:`ParallelOutcome` plus the scheduler's dispatch record."""

    def __init__(self, *args, dispatch_order=None, skipped=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.dispatch_order: List[int] = dispatch_order or []
        self.skipped: List[int] = skipped or []


def dispatch_order(components: Sequence[MRF]) -> List[int]:
    """Largest-first component order (ties broken by lower index)."""
    return sorted(range(len(components)), key=lambda i: (-components[i].size(), i))


def run_component_tasks(
    components: Sequence[MRF],
    tasks: Sequence[ComponentTask],
    backend: str,
    workers: int = 1,
    deadline_seconds: Optional[float] = None,
    local_states=None,
    placeholder: Optional[Callable[[int], ComponentOutcome]] = None,
    pool: Optional[WorkerPool] = None,
) -> ScheduledOutcome:
    """Run one task per component, returning results in component order.

    ``local_states`` supplies the caller's cached kernel states — one per
    component, for the WalkSAT state-reuse lifecycle — either as a
    sequence or as a zero-argument callable; it is only consulted (and a
    callable only invoked) on the in-process backends, so callers never
    build states the processes backend would ignore.  ``placeholder``
    builds the outcome of a component the deadline prevented from
    dispatching (it must not consume the run's RNG streams — each
    component owns a derived stream, so skipping one never shifts
    another's).

    ``pool`` lends a caller-owned :class:`WorkerPool` (the engine
    session's persistent pool) to the ``processes`` backend: the pool must
    have been packed from exactly these component objects, it is *not*
    shut down here (the owner keeps it warm across calls), and it is
    ignored on the in-process backends.  Without it the scheduler builds
    an ephemeral pool whose shared-memory segment is released in a
    ``finally`` even when a task raises.

    Note the deadline caveat: waves are sized by ``workers``, so a
    deadline-bounded run is deterministic per worker count but may skip
    *fewer* components at higher worker counts (more work completes
    before the budget is spent — the point of parallelism).  Without a
    deadline, results are identical across worker counts unconditionally.
    """
    if len(tasks) != len(components):
        raise ValueError("one task per component is required")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if backend == "processes":
        local_states = None
        if pool is not None and not pool.matches(components):
            raise ValueError(
                "the provided worker pool was packed for different components"
            )
    else:
        pool = None
        if callable(local_states):
            local_states = local_states()
    order = dispatch_order(components)
    slots: List[Optional[ComponentOutcome]] = [None] * len(tasks)
    skipped: List[int] = []
    dispatched: List[int] = []
    stopwatch = Stopwatch()

    owns_pool = False
    executor: Optional[ThreadPoolExecutor] = None

    def run_local(index: int) -> ComponentOutcome:
        state = local_states[index] if local_states is not None else None
        return execute_component_task(tasks[index], components[index], state)

    try:
        with stopwatch.measure():
            if backend == "processes":
                if pool is None:
                    pool = WorkerPool(components, workers)
                    owns_pool = True
            elif backend == "threads":
                executor = ThreadPoolExecutor(max_workers=workers)

            # Without a deadline the whole run is a single wave; with one,
            # waves of `workers` tasks give a deterministic point at which
            # the cumulative simulated spend is known and checked.
            wave_size = len(order) if deadline_seconds is None else max(workers, 1)
            spent = 0.0
            cursor = 0
            while cursor < len(order):
                if deadline_seconds is not None and spent >= deadline_seconds:
                    break
                wave = order[cursor : cursor + wave_size]
                cursor += len(wave)
                dispatched.extend(wave)
                if pool is not None:
                    for index in wave:
                        pool.submit(tasks[index])
                    outcomes = pool.drain(len(wave))
                elif executor is not None:
                    outcomes = list(executor.map(run_local, wave))
                else:
                    outcomes = [run_local(index) for index in wave]
                for outcome in outcomes:
                    slots[outcome.index] = outcome
                # Deterministic accounting: completed durations summed in
                # dispatch order, not completion order (the wave is a
                # barrier, so folding it in dispatch order onto the running
                # sum is the same left-to-right float addition sequence).
                for index in wave:
                    spent += slots[index].simulated_seconds

            for index in order[cursor:]:
                skipped.append(index)
                if placeholder is None:
                    raise RuntimeError(
                        "deadline skipped components but no placeholder was provided"
                    )
                slots[index] = placeholder(index)
    finally:
        if pool is not None and owns_pool:
            pool.shutdown()
        if executor is not None:
            executor.shutdown()

    durations = [slot.simulated_seconds for slot in slots]
    return ScheduledOutcome(
        results=[slot.result for slot in slots],
        wall_seconds=stopwatch.total,
        sequential_simulated_seconds=sum(durations),
        parallel_simulated_seconds=_list_schedule_makespan(durations, workers),
        dispatch_order=dispatched,
        skipped=sorted(skipped),
    )
