"""The partition scheduler: dispatch component tasks on a parallel backend.

This is the execution layer behind ``parallel_backend``
(:func:`repro.parallel.resolve_parallel_backend`): it takes the caller's
components (typically straight from a :class:`~repro.partitioning.loader.LoadPlan`
batch, flattened in batch order) and one :class:`ComponentTask` per
component, and runs them

* **largest-first** — components are dispatched in decreasing ``size()``
  order (ties by lower index), the classic list-scheduling heuristic the
  simulated Table 7 model already uses, so stragglers start early;
* **work-stealing** (``dispatch="steal"``, the default) — a shared task
  cursor over the largest-first order: every worker pulls the next
  component the moment it finishes its current one, so no worker ever
  idles at a barrier while another grinds through a giant component.
  The per-wave barrier scheduler survives as ``dispatch="wave"`` (the
  benchmark baseline): waves of ``workers`` tasks with a full barrier
  between them;
* on the resolved backend — in-process for ``serial``/``threads``
  (reusing the caller's cached kernel states), through the shared-memory
  :class:`~repro.parallel.pool.WorkerPool` for ``processes``, whose
  results ship back through the pool's shared-memory result regions.

**Deadline accounting is post-hoc bookkeeping, not wave membership.**
When ``deadline_seconds`` is set, the components that count are decided
by a rule that references only deterministic quantities: dispatch
position ``p`` is *counted* iff the left-to-right sum of the simulated
costs of positions ``0..p-1`` stays below the deadline — exactly the
spend a single worker executing the dispatch order sequentially would
have accumulated when it reached ``p``.  Everything past the first
excluded position gets the caller's placeholder result, *even if a
worker already ran it* (an over-eager execution is discarded, its
derived RNG stream touched nothing else).  Because the rule never
mentions workers, waves, or completion order, deadline outcomes are
bit-identical across ``serial | threads | processes``, across ``steal``
and ``wave`` dispatch, and across worker counts — the old wave scheduler
skipped *fewer* components at higher worker counts, which this replaces.
Simulated costs are nonnegative, so the prefix sums are monotone and the
cutoff becomes *provable* mid-run as soon as the known prefix crosses
the deadline; dispatch stops submitting there, and with a deadline the
in-flight window is capped at ``workers`` so at most ``workers - 1``
results are ever discarded.

Results are always returned **in component order** regardless of
completion order, and every aggregate (sequential simulated seconds,
list-scheduling makespan) is computed in the same order as the serial
path, so seeded runs are bit-for-bit identical across backends, dispatch
modes and worker counts (``tests/test_parallel_parity.py``).  The
telemetry on :class:`ScheduledOutcome` (steal counts, per-worker task
counts, shm-vs-pickled shipping) is the one deliberately nondeterministic
part — it reports what actually happened on the machine.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.inference.scheduling import ParallelOutcome, _list_schedule_makespan
from repro.mrf.graph import MRF
from repro.obs.tracer import NullTracer
from repro.parallel import DISPATCH_MODES
from repro.parallel.pool import (
    ComponentOutcome,
    ComponentTask,
    WorkerPool,
    execute_component_task,
)
from repro.utils.clock import wall_now, wall_sleep
from repro.utils.timer import Stopwatch


class ScheduledOutcome(ParallelOutcome):
    """A :class:`ParallelOutcome` plus the scheduler's dispatch record.

    ``dispatch_order`` and ``skipped`` are deterministic (part of the
    parity contract); the remaining fields are execution telemetry —
    ``executed`` tasks actually ran, of which ``discarded`` finished past
    the deadline cutoff and were replaced by placeholders; ``steals`` is
    how many tasks a worker pulled beyond its first (0 under ``wave``
    dispatch — a barrier assignment is not a steal — and 0 when
    per-worker attribution is unavailable: the serial path and the
    wave-threads barrier); ``worker_task_counts`` maps worker id →
    tasks executed;
    ``shm_shipped`` / ``pickle_shipped`` / ``shm_bytes`` report the
    result-shipping split on the processes backend, counted per request
    (a warm pool's lifetime totals never bleed into one request's
    record).
    """

    def __init__(
        self,
        *args,
        dispatch_order=None,
        skipped=None,
        dispatch: str = "steal",
        executed: int = 0,
        discarded: int = 0,
        steals: int = 0,
        worker_task_counts=None,
        shm_shipped: int = 0,
        pickle_shipped: int = 0,
        shm_bytes: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.dispatch_order: List[int] = dispatch_order or []
        self.skipped: List[int] = skipped or []
        self.dispatch = dispatch
        self.executed = executed
        self.discarded = discarded
        self.steals = steals
        self.worker_task_counts: Dict[int, int] = worker_task_counts or {}
        self.shm_shipped = shm_shipped
        self.pickle_shipped = pickle_shipped
        self.shm_bytes = shm_bytes


def dispatch_order(components: Sequence[MRF]) -> List[int]:
    """Largest-first component order (ties broken by lower index)."""
    return sorted(range(len(components)), key=lambda i: (-components[i].size(), i))


def deadline_cutoff(
    costs: Sequence[Optional[float]], deadline: Optional[float]
) -> Optional[int]:
    """First dispatch position the deadline excludes, if provable.

    ``costs`` holds the simulated seconds of each dispatch position
    (``None`` while unknown).  Position ``p`` is counted iff the
    left-to-right sum of positions ``0..p-1`` is below the deadline; the
    sums are monotone (costs are nonnegative), so the first crossing is
    final the moment every position before it is known — returning a
    cutoff here is therefore sound even while later tasks are still in
    flight.  Returns ``None`` when there is no deadline, or no cutoff is
    provable yet (an unknown cost precedes any crossing).
    """
    if deadline is None:
        return None
    spent = 0.0
    for position, cost in enumerate(costs):
        if spent >= deadline:
            return position
        if cost is None:
            return None
        spent += cost
    return None


# ----------------------------------------------------------------------
# Work-stealing (threads): shared cursor + module-level worker loop
# ----------------------------------------------------------------------


class _StealState:
    """Shared cursor and bookkeeping for the in-process stealing loop.

    One lock guards the claim/complete transitions; the task bodies run
    outside it.  Claiming re-derives the provable deadline cutoff from
    the costs recorded so far, so submission stops as early as the
    accounting allows without ever guessing.
    """

    def __init__(
        self,
        order: Sequence[int],
        run_local: Callable[[int], ComponentOutcome],
        deadline: Optional[float],
        stall_worker: Optional[Tuple[int, float]],
    ) -> None:
        self.lock = threading.Lock()
        self.order = order
        self.run_local = run_local
        self.deadline = deadline
        self.stall_worker = stall_worker
        self.cursor = 0
        self.costs: List[Optional[float]] = [None] * len(order)
        self.outcomes: List[Optional[ComponentOutcome]] = [None] * len(order)
        self.counts: Dict[int, int] = {}
        self.workers_by_position: Dict[int, int] = {}
        self.error: Optional[BaseException] = None

    def claim(self) -> Optional[int]:
        with self.lock:
            if self.error is not None or self.cursor >= len(self.order):
                return None
            cutoff = deadline_cutoff(self.costs, self.deadline)
            if cutoff is not None and self.cursor >= cutoff:
                return None
            position = self.cursor
            self.cursor += 1
            return position

    def complete(
        self, position: int, outcome: ComponentOutcome, worker_index: int
    ) -> None:
        with self.lock:
            self.outcomes[position] = outcome
            self.costs[position] = outcome.simulated_seconds
            self.counts[worker_index] = self.counts.get(worker_index, 0) + 1
            self.workers_by_position[position] = worker_index

    def fail(self, error: BaseException) -> None:
        with self.lock:
            if self.error is None:
                self.error = error


def _steal_thread_main(state: _StealState, worker_index: int) -> None:
    """One stealing worker: pull from the shared cursor until it runs dry.

    Module-level (not a closure) so the ``fork-task-closure`` discipline
    holds for thread pools too.  The stall hook delays the chosen worker
    before every task — the injected-slow-worker test uses it to force
    maximal stealing skew without touching any result.
    """
    stall = state.stall_worker
    while True:
        position = state.claim()
        if position is None:
            return
        if stall is not None and stall[0] == worker_index:
            wall_sleep(stall[1])
        try:
            outcome = state.run_local(state.order[position])
        except BaseException as error:  # re-raised by the driver
            state.fail(error)
            return
        state.complete(position, outcome, worker_index)


def run_component_tasks(
    components: Sequence[MRF],
    tasks: Sequence[ComponentTask],
    backend: str,
    workers: int = 1,
    deadline_seconds: Optional[float] = None,
    local_states=None,
    placeholder: Optional[Callable[[int], ComponentOutcome]] = None,
    pool: Optional[WorkerPool] = None,
    dispatch: str = "steal",
    stall_worker: Optional[Tuple[int, float]] = None,
    request_id: int = 0,
    tracer=None,
    metrics=None,
) -> ScheduledOutcome:
    """Run one task per component, returning results in component order.

    ``local_states`` supplies the caller's cached kernel states — one per
    component, for the WalkSAT state-reuse lifecycle — either as a
    sequence or as a zero-argument callable; it is only consulted (and a
    callable only invoked) on the in-process backends, so callers never
    build states the processes backend would ignore.  ``placeholder``
    builds the outcome of a component the deadline excluded (it must not
    consume the run's RNG streams — each component owns a derived stream,
    so skipping one never shifts another's).

    ``pool`` lends a caller-owned :class:`WorkerPool` (the engine
    session's persistent pool) to the ``processes`` backend: the pool must
    have been packed from exactly these component objects, it is *not*
    shut down here (the owner keeps it warm across calls), and it is
    ignored on the in-process backends.  Without it the scheduler builds
    an ephemeral pool whose shared-memory segments are released in a
    ``finally`` even when a task raises.

    ``dispatch`` selects the dispatch loop (``"steal"`` work-stealing,
    ``"wave"`` legacy barrier waves) — bit-identical results either way;
    ``stall_worker=(index, seconds)`` is the slow-worker test hook for
    the in-process stealing loop (the processes backend takes the
    equivalent hook on the pool constructor).

    Deadline-bounded runs count the components chosen by the post-hoc
    prefix rule (see the module docstring): identical across backends,
    dispatch modes *and* worker counts.

    ``request_id`` names the admitted request this run belongs to; every
    task is stamped with it, so a shared persistent pool can multiplex
    several concurrent requests' task streams (each request keeps its own
    largest-first cursor, deadline accounting and completion drain —
    whichever worker frees up next simply takes the head of whichever
    stream reaches the shared queue first).  Because dispatch order, the
    derived per-component seeds, and the post-hoc counting rule are all
    per-request, an interleaved run's outcome is bit-identical to running
    the request alone.

    ``tracer`` / ``metrics`` are the injected observability surfaces
    (defaulting to no-ops).  With a recording tracer, every executed
    task gets a post-hoc ``component[i]`` span — emitted from *this*
    thread in dispatch order, so the merged order is deterministic even
    though completion order is not — stitched with the worker-side
    phase events shipped on the completion tokens, plus one ``ship``
    span covering the result drain.  Pure read-side telemetry: no RNG,
    no simulated-clock mutation, bit-identical results traced or not.
    """
    if len(tasks) != len(components):
        raise ValueError("one task per component is required")
    if workers <= 0:
        raise ValueError("workers must be positive")
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r}; expected one of {DISPATCH_MODES}"
        )
    if backend == "processes":
        local_states = None
        if pool is not None and not pool.matches(components):
            raise ValueError(
                "the provided worker pool was packed for different components"
            )
    else:
        pool = None
        if callable(local_states):
            local_states = local_states()
    if tracer is None:
        tracer = NullTracer()
    traced = tracer.enabled
    for task in tasks:
        task.request_id = request_id
        task.trace_events = traced
    order = dispatch_order(components)
    position_of = {index: position for position, index in enumerate(order)}
    slots: List[Optional[ComponentOutcome]] = [None] * len(tasks)
    costs: List[Optional[float]] = [None] * len(order)
    worker_counts: Dict[int, int] = {}
    #: component index -> (wall start, wall end) for in-process tasks
    task_walls: List[Optional[Tuple[float, float]]] = [None] * len(tasks)
    #: component index -> worker id, where attribution is known
    worker_of: Dict[int, int] = {}
    #: [first drain start, last drain end] on the processes backend
    ship_window: List[Optional[float]] = [None, None]
    task_event_map: Dict[int, dict] = {}
    executed = 0
    stopwatch = Stopwatch()

    owns_pool = False
    shm_shipped = pickle_shipped = shm_bytes = 0

    def run_local(index: int) -> ComponentOutcome:
        state = local_states[index] if local_states is not None else None
        return execute_component_task(tasks[index], components[index], state)

    if traced:
        inner_run_local = run_local

        def run_local(index: int) -> ComponentOutcome:
            start = wall_now()
            outcome = inner_run_local(index)
            task_walls[index] = (start, wall_now())
            return outcome

    def record(outcome: ComponentOutcome) -> None:
        slots[outcome.index] = outcome
        costs[position_of[outcome.index]] = outcome.simulated_seconds

    try:
        with stopwatch.measure():
            if backend == "processes":
                if pool is None:
                    pool = WorkerPool(components, workers)
                    owns_pool = True

            if backend == "serial" or (
                backend != "processes" and (workers == 1 or len(order) <= 1)
            ):
                # The executable specification: strictly sequential in
                # dispatch order, stopping exactly at the deadline rule.
                spent = 0.0
                for position, index in enumerate(order):
                    if deadline_seconds is not None and spent >= deadline_seconds:
                        break
                    outcome = run_local(index)
                    executed += 1
                    record(outcome)
                    worker_of[index] = 0
                    spent += outcome.simulated_seconds
            elif dispatch == "steal":
                if backend == "processes":
                    executed = _run_processes_steal(
                        order, tasks, pool, workers, deadline_seconds,
                        costs, slots, position_of, worker_counts, request_id,
                        worker_of=worker_of,
                        ship_window=ship_window if traced else None,
                    )
                else:
                    state = _StealState(
                        order, run_local, deadline_seconds, stall_worker
                    )
                    with ThreadPoolExecutor(max_workers=workers) as executor:
                        futures = [
                            executor.submit(_steal_thread_main, state, worker_index)
                            for worker_index in range(min(workers, len(order)))
                        ]
                        for future in futures:
                            future.result()
                    if state.error is not None:
                        raise state.error
                    for position, outcome in enumerate(state.outcomes):
                        if outcome is not None:
                            record(outcome)
                            executed += 1
                    worker_counts.update(state.counts)
                    for position, worker_index in state.workers_by_position.items():
                        worker_of[order[position]] = worker_index
            else:  # dispatch == "wave": the legacy barrier scheduler
                # Waves of ``workers`` tasks with a full barrier between
                # them — the baseline the stealing loop is benchmarked
                # against (an imbalanced wave idles every worker behind
                # its slowest member).
                wave_size = max(workers, 1)
                cursor = 0
                executor = None
                try:
                    if backend == "threads":
                        executor = ThreadPoolExecutor(max_workers=workers)
                    while cursor < len(order):
                        cutoff = deadline_cutoff(costs, deadline_seconds)
                        if cutoff is not None and cursor >= cutoff:
                            break
                        wave = order[cursor : cursor + wave_size]
                        cursor += len(wave)
                        if backend == "processes":
                            for index in wave:
                                pool.submit(tasks[index])
                            for _ in wave:
                                drain_start = wall_now() if traced else 0.0
                                outcome, worker_id = pool.next_outcome(request_id)
                                if traced:
                                    if ship_window[0] is None:
                                        ship_window[0] = drain_start
                                    ship_window[1] = wall_now()
                                record(outcome)
                                worker_of[outcome.index] = worker_id
                                worker_counts[worker_id] = (
                                    worker_counts.get(worker_id, 0) + 1
                                )
                        elif executor is not None:
                            for outcome in executor.map(run_local, wave):
                                record(outcome)
                        executed += len(wave)
                finally:
                    if executor is not None:
                        executor.shutdown()

            # Post-hoc bookkeeping: the counted prefix of the dispatch
            # order, by the deterministic rule (module docstring).
            counted: List[int] = []
            spent = 0.0
            for position, index in enumerate(order):
                if deadline_seconds is not None and spent >= deadline_seconds:
                    break
                cost = costs[position]
                if cost is None:
                    raise RuntimeError(
                        "internal scheduler error: counted dispatch position "
                        f"{position} (component {index}) never executed"
                    )
                counted.append(index)
                spent += cost

            skipped: List[int] = []
            discarded = 0
            discarded_indices: set = set()
            for index in order[len(counted):]:
                if slots[index] is not None:
                    discarded += 1
                    discarded_indices.add(index)
                skipped.append(index)
                if placeholder is None:
                    raise RuntimeError(
                        "deadline skipped components but no placeholder was provided"
                    )
                slots[index] = placeholder(index)
    finally:
        if backend == "processes" and pool is not None:
            # Pull the workers' span records before finish_request wipes
            # the request's stash, then close out the admission: collect
            # the shipping counters attributable to exactly this request
            # and free its result bank for the next one.
            if traced:
                task_event_map = pool.take_task_events(request_id)
            shm_shipped, pickle_shipped, shm_bytes = pool.finish_request(request_id)
        if pool is not None and owns_pool:
            pool.shutdown()

    if traced:
        _emit_task_spans(
            tracer,
            order,
            dispatch,
            task_walls,
            task_event_map,
            worker_of,
            costs,
            discarded_indices,
            ship_window,
            backend,
            shm_shipped,
            pickle_shipped,
            shm_bytes,
        )

    durations = [slot.simulated_seconds for slot in slots]
    participating = len(worker_counts)
    steals = (
        max(0, executed - participating)
        if dispatch == "steal" and participating
        else 0
    )
    if metrics is not None:
        metrics.increment("scheduler.tasks_executed", executed)
        metrics.increment("scheduler.tasks_discarded", discarded)
        metrics.increment("scheduler.tasks_skipped", len(skipped))
        metrics.increment("scheduler.steals", steals)
        metrics.observe("scheduler.dispatch_wall_seconds", stopwatch.total)
    return ScheduledOutcome(
        results=[slot.result for slot in slots],
        wall_seconds=stopwatch.total,
        sequential_simulated_seconds=sum(durations),
        parallel_simulated_seconds=_list_schedule_makespan(durations, workers),
        dispatch_order=counted,
        skipped=sorted(skipped),
        dispatch=dispatch,
        executed=executed,
        discarded=discarded,
        steals=steals,
        worker_task_counts=worker_counts,
        shm_shipped=shm_shipped,
        pickle_shipped=pickle_shipped,
        shm_bytes=shm_bytes,
    )


def _emit_task_spans(
    tracer,
    order: Sequence[int],
    dispatch: str,
    task_walls: List[Optional[Tuple[float, float]]],
    task_event_map: Dict[int, dict],
    worker_of: Dict[int, int],
    costs: List[Optional[float]],
    discarded_indices: set,
    ship_window: List[Optional[float]],
    backend: str,
    shm_shipped: int,
    pickle_shipped: int,
    shm_bytes: int,
) -> None:
    """Stitch the run's task spans under the ambient (request) span.

    Emitted post-hoc from the request's own thread, iterating dispatch
    positions in order — the merged span order is deterministic no matter
    which worker finished when.  Worker-side phase events (shipped on the
    completion tokens) become child spans of their task's span.
    """
    for position, index in enumerate(order):
        walls = task_walls[index]
        info = task_event_map.get(index)
        events = info["events"] if info else None
        if walls is None and events:
            walls = (events[0]["start"], events[-1]["end"])
        if walls is None:
            continue  # excluded by the deadline before anyone ran it
        attributes = {
            "component": index,
            "position": position,
            "dispatch": dispatch,
            "backend": backend,
        }
        worker = worker_of.get(index, info["worker"] if info else None)
        if worker is not None:
            attributes["worker"] = worker
        if info is not None:
            attributes["channel"] = info["channel"]
        cost = costs[position]
        if cost is not None:
            attributes["simulated_seconds"] = cost
        if index in discarded_indices:
            attributes["discarded"] = True
        task_span = tracer.record_span(
            f"component[{index}]", walls[0], walls[1], **attributes
        )
        if events:
            for event in events:
                tracer.record_span(
                    event["name"],
                    event["start"],
                    event["end"],
                    parent=task_span,
                    worker=info["worker"],
                )
    if ship_window[0] is not None and ship_window[1] is not None:
        ship_start, ship_end = ship_window[0], ship_window[1]
    else:
        now = tracer.now()
        ship_start = ship_end = now
    tracer.record_span(
        "ship",
        ship_start,
        ship_end,
        backend=backend,
        shm=shm_shipped,
        pickle=pickle_shipped,
        shm_bytes=shm_bytes,
    )


def _run_processes_steal(
    order: Sequence[int],
    tasks: Sequence[ComponentTask],
    pool: WorkerPool,
    workers: int,
    deadline: Optional[float],
    costs: List[Optional[float]],
    slots: List[Optional[ComponentOutcome]],
    position_of: Dict[int, int],
    worker_counts: Dict[int, int],
    request_id: int = 0,
    worker_of: Optional[Dict[int, int]] = None,
    ship_window: Optional[List[Optional[float]]] = None,
) -> int:
    """The stealing loop on the forked pool.

    The pool's task queue *is* the shared cursor: tasks enter it in
    largest-first order and whichever worker frees up first takes the
    head.  Without a deadline everything is submitted up-front (maximum
    stealing, zero parent involvement until completions); with one, the
    in-flight window is capped at ``workers`` so no more than
    ``workers - 1`` tasks can ever run past the provable cutoff.

    Under concurrent admission the same queue multiplexes several
    requests' streams — this loop submits only its own request's tasks
    and drains only its own completions (:meth:`WorkerPool.next_outcome`
    parks other requests' tokens for their draining threads), so the
    per-request cursor, window and deadline accounting are untouched by
    interleaving.
    """
    window = len(order) if deadline is None else max(workers, 1)
    submitted = 0
    completed = 0
    while True:
        cutoff = deadline_cutoff(costs, deadline)
        limit = len(order) if cutoff is None else min(cutoff, len(order))
        while submitted < limit and submitted - completed < window:
            pool.submit(tasks[order[submitted]])
            submitted += 1
        if completed >= submitted:
            break
        drain_start = wall_now() if ship_window is not None else 0.0
        outcome, worker_id = pool.next_outcome(request_id)
        if ship_window is not None:
            if ship_window[0] is None:
                ship_window[0] = drain_start
            ship_window[1] = wall_now()
        completed += 1
        slots[outcome.index] = outcome
        costs[position_of[outcome.index]] = outcome.simulated_seconds
        worker_counts[worker_id] = worker_counts.get(worker_id, 0) + 1
        if worker_of is not None:
            worker_of[outcome.index] = worker_id
    return completed
