"""Multiprocess partition-inference subsystem.

The third backend seam of the repo, mirroring ``kernel_backend`` (search
kernel) and ``execution_backend`` (relational engine):

``parallel_backend = auto | serial | threads | processes``

selects the vehicle that runs per-component inference tasks.  ``serial``
runs them in the calling thread (the executable specification),
``threads`` uses a thread pool (GIL-bound — useful only for I/O-flavoured
cost models), and ``processes`` forks a worker pool that receives every
component's flat kernel structure through one shared-memory segment
(:mod:`repro.parallel.buffers`) and runs the existing WalkSAT / MC-SAT
drivers unchanged (:mod:`repro.parallel.pool`), shipping results back
through a per-component shared-memory result region.  Dispatch
(largest-first work-stealing, with the legacy barrier waves kept as
``parallel_dispatch="wave"``) lives in :mod:`repro.parallel.scheduler`;
deterministic result merging in :mod:`repro.parallel.merge`.

**Determinism contract**: each component's task runs on an RNG stream
derived only from the run seed and the component index, and every merge
is performed in component order — so MAP assignments and marginals are
bit-for-bit identical across backends, dispatch modes and worker counts
(``tests/test_parallel_parity.py`` proves it on example1, RC and IE).
The backend choice is purely a wall-clock decision.  This holds for
``deadline_seconds`` too: the components that count are decided by
post-hoc bookkeeping over the per-component simulated costs (dispatch
position ``p`` counts iff the summed costs of the positions before it
stay under the deadline — the spend of a single sequential worker), not
by wave membership or completion order, so the deadline outcome is the
same on every backend, dispatch mode and worker count.

This module keeps only the seam itself (constants + resolution) so that
importing it from the config layer costs nothing; the heavy pieces import
lazily.
"""

from __future__ import annotations

import multiprocessing

#: Valid values for the ``parallel_backend`` option of the component
#: search drivers, the engine config and the CLI.
PARALLEL_BACKENDS = ("auto", "serial", "threads", "processes")

#: Valid values for the ``parallel_dispatch`` option of the scheduler, the
#: engine config and the CLI: ``steal`` is the work-stealing dispatch loop
#: (default), ``wave`` the legacy barrier scheduler kept as a benchmark
#: baseline.  Results are bit-identical across both.
DISPATCH_MODES = ("steal", "wave")


def processes_available() -> bool:
    """Whether the forked worker-pool backend can run on this platform.

    The pool hands workers its shared-memory buffer set by fork
    inheritance (no attach-by-name, no resource-tracker races), so the
    ``fork`` start method is required — available on Linux/BSD, not on
    Windows (and not under some restricted environments).
    """
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform probing
        return False


def available_parallel_backends() -> tuple:
    """The parallel backends usable in this environment, in preference order."""
    if processes_available():
        return ("serial", "threads", "processes")
    return ("serial", "threads")


def resolve_parallel_backend(
    backend: str = "auto", workers: int = 1, task_count: int = 2
) -> str:
    """Resolve a requested backend name to a concrete one for this run.

    ``auto`` picks ``processes`` when there is parallelism to exploit —
    more than one worker *and* more than one component — and the platform
    supports the forked pool; a single component (or a single worker)
    falls back to ``serial``, where the pool's spin-up cost cannot be
    repaid (the bench pins the single-component overhead bound).  All
    backends are bit-identical in results, so the choice is purely a
    performance decision.
    """
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; expected one of {PARALLEL_BACKENDS}"
        )
    if backend == "processes":
        if not processes_available():
            raise RuntimeError(
                "processes parallel backend requested but the fork start "
                "method is not available on this platform"
            )
        return backend
    if backend != "auto":
        return backend
    if workers <= 1 or task_count <= 1:
        return "serial"
    if processes_available():
        return "processes"
    return "threads"
