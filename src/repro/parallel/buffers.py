"""Shared-memory component buffers for the multiprocess inference pool.

The process backend must hand each worker the structure of every MRF
component it may be asked to search.  Pickling the components through the
task queue would copy the whole clause list per task (the cost the paper's
batch loader exists to avoid); instead the parent packs, once per run, the
*flat kernel structure* of every component — the same position-indexed
buffers :class:`~repro.mrf.graph.MRFFlatView` feeds the WalkSAT kernel —
into one :class:`multiprocessing.shared_memory.SharedMemory` segment:

* per component: its global atom ids, its per-clause weights, and the
  clause → literal relation as signed *position codes* (``+(p+1)`` /
  ``-(p+1)``, exactly ``MRFFlatView.clause_codes``) in one CSR pair
  (codes + clause offsets);
* one directory (plain Python, a few ints per component) mapping each
  component to its slices of the segment.

Workers inherit the mapping through ``fork`` (the only start method the
process backend supports — see :func:`repro.parallel.resolve_parallel_backend`),
attach zero-copy ``memoryview`` casts over it, and rebuild each component's
MRF *on first use only* (then cache it): clause order, atom order and
literal order are preserved exactly, so the rebuilt flat view — and
therefore every seeded search over it — is bit-for-bit identical to the
parent's (the parity suite pins this).

Everything here uses the stdlib ``array``/``memoryview`` machinery so the
process backend keeps working when numpy is absent.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Tuple

from repro.grounding.clause_table import GroundClause
from repro.mrf.graph import MRF

#: Directory entry per component: element offsets (8-byte units) into the
#: segment plus counts.  ``(weights_off, n_clauses, ids_off, n_atoms,
#: offsets_off, codes_off, n_codes)``.
DirectoryEntry = Tuple[int, int, int, int, int, int, int]


class ComponentBufferSet:
    """A packed set of MRF components living in one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        directory: List[DirectoryEntry],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.directory = directory
        self._owner = owner
        # Whole-segment casts; both views address the same 8-byte elements.
        self._ints = shm.buf.cast("q")
        self._floats = shm.buf.cast("d")
        self._mrf_cache: Dict[int, MRF] = {}

    # ------------------------------------------------------------------
    # Packing (parent side)
    # ------------------------------------------------------------------

    @classmethod
    def pack(cls, components: Sequence[MRF]) -> "ComponentBufferSet":
        """Serialise every component's flat structure into shared memory."""
        directory: List[DirectoryEntry] = []
        total = 0
        views = [component.flat_view() for component in components]
        for component, view in zip(components, views):
            n_clauses = component.clause_count
            n_atoms = len(view.atom_ids)
            n_codes = sum(len(codes) for codes in view.clause_codes)
            directory.append(
                (
                    total,  # weights
                    n_clauses,
                    total + n_clauses,  # atom ids
                    n_atoms,
                    total + n_clauses + n_atoms,  # clause offsets (n_clauses + 1)
                    total + n_clauses + n_atoms + n_clauses + 1,  # codes
                    n_codes,
                )
            )
            total += n_clauses + n_atoms + n_clauses + 1 + n_codes
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1) * 8)
        buffers = cls(shm, directory, owner=True)
        ints = buffers._ints
        floats = buffers._floats
        for component, view, entry in zip(components, views, directory):
            w_off, n_clauses, ids_off, n_atoms, offs_off, codes_off, _ = entry
            for index, clause in enumerate(component.clauses):
                floats[w_off + index] = clause.weight
            ints[ids_off : ids_off + n_atoms] = array("q", view.atom_ids)
            offset = 0
            cursor = codes_off
            for index, codes in enumerate(view.clause_codes):
                ints[offs_off + index] = offset
                ints[cursor : cursor + len(codes)] = array("q", codes)
                cursor += len(codes)
                offset += len(codes)
            ints[offs_off + n_clauses] = offset
        return buffers

    # ------------------------------------------------------------------
    # Rebuilding (worker side)
    # ------------------------------------------------------------------

    def component(self, index: int) -> MRF:
        """The MRF of one packed component, rebuilt once and cached.

        Clause order, atom-id order and literal order match the packed
        component exactly, so the lazily built flat view (and every search
        over it) is identical to the parent's.
        """
        cached = self._mrf_cache.get(index)
        if cached is not None:
            return cached
        w_off, n_clauses, ids_off, n_atoms, offs_off, codes_off, _ = self.directory[index]
        ints = self._ints
        floats = self._floats
        atom_ids = list(ints[ids_off : ids_off + n_atoms])
        clauses: List[GroundClause] = []
        for clause_index in range(n_clauses):
            start = codes_off + ints[offs_off + clause_index]
            stop = codes_off + ints[offs_off + clause_index + 1]
            literals = tuple(
                atom_ids[code - 1] if code > 0 else -atom_ids[-code - 1]
                for code in ints[start:stop]
            )
            clauses.append(
                GroundClause(clause_index + 1, literals, floats[w_off + clause_index])
            )
        mrf = MRF(clauses=clauses, atom_ids=atom_ids)
        mrf._build_adjacency()
        self._mrf_cache[index] = mrf
        return mrf

    def __len__(self) -> int:
        return len(self.directory)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release this process's view (workers call this on shutdown)."""
        # memoryview casts must be released before the segment can unmap.
        self._ints.release()
        self._floats.release()
        self._shm.close()

    def destroy(self) -> None:
        """Release and unlink the segment (owner only, after the run)."""
        self.close()
        if self._owner:
            self._shm.unlink()
