"""Shared-memory component buffers for the multiprocess inference pool.

The process backend must hand each worker the structure of every MRF
component it may be asked to search.  Pickling the components through the
task queue would copy the whole clause list per task (the cost the paper's
batch loader exists to avoid); instead the parent packs, once per run, the
*flat kernel structure* of every component — the same position-indexed
buffers :class:`~repro.mrf.graph.MRFFlatView` feeds the WalkSAT kernel —
into one :class:`multiprocessing.shared_memory.SharedMemory` segment:

* per component: its global atom ids, its per-clause weights, and the
  clause → literal relation as signed *position codes* (``+(p+1)`` /
  ``-(p+1)``, exactly ``MRFFlatView.clause_codes``) in one CSR pair
  (codes + clause offsets);
* one directory (plain Python, a few ints per component) mapping each
  component to its slices of the segment.

Workers inherit the mapping through ``fork`` (the only start method the
process backend supports — see :func:`repro.parallel.resolve_parallel_backend`),
attach zero-copy ``memoryview`` casts over it, and rebuild each component's
MRF *on first use only* (then cache it): clause order, atom order and
literal order are preserved exactly, so the rebuilt flat view — and
therefore every seeded search over it — is bit-for-bit identical to the
parent's (the parity suite pins this).

Results travel the same road in reverse: :class:`ResultBufferSet`
reserves a per-component *result region* (atom values, trace slots,
hitting/flip counters) at pack time, workers write finished results in
place and the result queue carries only a tiny completion token —
pickling of large assignments and marginal vectors is gone entirely.

Everything here uses the stdlib ``array``/``memoryview`` machinery so the
process backend keeps working when numpy is absent.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grounding.clause_table import GroundClause
from repro.inference.mcsat import MarginalResult
from repro.inference.tracing import TimeCostTrace, TracePoint
from repro.inference.walksat import WalkSATResult
from repro.mrf.graph import MRF

#: Directory entry per component: element offsets (8-byte units) into the
#: segment plus counts.  ``(weights_off, n_clauses, ids_off, n_atoms,
#: offsets_off, codes_off, n_codes)``.
DirectoryEntry = Tuple[int, int, int, int, int, int, int]


class ComponentBufferSet:
    """A packed set of MRF components living in one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        directory: List[DirectoryEntry],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.directory = directory
        self._owner = owner
        # Whole-segment casts; both views address the same 8-byte elements.
        self._ints = shm.buf.cast("q")
        self._floats = shm.buf.cast("d")
        self._mrf_cache: Dict[int, MRF] = {}

    # ------------------------------------------------------------------
    # Packing (parent side)
    # ------------------------------------------------------------------

    @classmethod
    def pack(cls, components: Sequence[MRF]) -> "ComponentBufferSet":
        """Serialise every component's flat structure into shared memory."""
        directory: List[DirectoryEntry] = []
        total = 0
        views = [component.flat_view() for component in components]
        for component, view in zip(components, views):
            n_clauses = component.clause_count
            n_atoms = len(view.atom_ids)
            n_codes = sum(len(codes) for codes in view.clause_codes)
            directory.append(
                (
                    total,  # weights
                    n_clauses,
                    total + n_clauses,  # atom ids
                    n_atoms,
                    total + n_clauses + n_atoms,  # clause offsets (n_clauses + 1)
                    total + n_clauses + n_atoms + n_clauses + 1,  # codes
                    n_codes,
                )
            )
            total += n_clauses + n_atoms + n_clauses + 1 + n_codes
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1) * 8)
        buffers = cls(shm, directory, owner=True)
        ints = buffers._ints
        floats = buffers._floats
        for component, view, entry in zip(components, views, directory):
            w_off, n_clauses, ids_off, n_atoms, offs_off, codes_off, _ = entry
            for index, clause in enumerate(component.clauses):
                floats[w_off + index] = clause.weight
            ints[ids_off : ids_off + n_atoms] = array("q", view.atom_ids)
            offset = 0
            cursor = codes_off
            for index, codes in enumerate(view.clause_codes):
                ints[offs_off + index] = offset
                ints[cursor : cursor + len(codes)] = array("q", codes)
                cursor += len(codes)
                offset += len(codes)
            ints[offs_off + n_clauses] = offset
        return buffers

    # ------------------------------------------------------------------
    # Rebuilding (worker side)
    # ------------------------------------------------------------------

    def component(self, index: int) -> MRF:
        """The MRF of one packed component, rebuilt once and cached.

        Clause order, atom-id order and literal order match the packed
        component exactly, so the lazily built flat view (and every search
        over it) is identical to the parent's.
        """
        cached = self._mrf_cache.get(index)
        if cached is not None:
            return cached
        w_off, n_clauses, ids_off, n_atoms, offs_off, codes_off, _ = self.directory[index]
        ints = self._ints
        floats = self._floats
        atom_ids = list(ints[ids_off : ids_off + n_atoms])
        clauses: List[GroundClause] = []
        for clause_index in range(n_clauses):
            start = codes_off + ints[offs_off + clause_index]
            stop = codes_off + ints[offs_off + clause_index + 1]
            literals = tuple(
                atom_ids[code - 1] if code > 0 else -atom_ids[-code - 1]
                for code in ints[start:stop]
            )
            clauses.append(
                GroundClause(clause_index + 1, literals, floats[w_off + clause_index])
            )
        mrf = MRF(clauses=clauses, atom_ids=atom_ids)
        mrf._build_adjacency()
        self._mrf_cache[index] = mrf
        return mrf

    def __len__(self) -> int:
        return len(self.directory)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release this process's view (workers call this on shutdown)."""
        # memoryview casts must be released before the segment can unmap.
        self._ints.release()
        self._floats.release()
        self._shm.close()

    def destroy(self) -> None:
        """Release and unlink the segment (owner only, after the run)."""
        self.close()
        if self._owner:
            self._shm.unlink()


# ----------------------------------------------------------------------
# Result shipping (worker → parent)
# ----------------------------------------------------------------------

#: Fixed per-component result header, in 8-byte elements.  Slots are read
#: through whichever cast (int/float) matches the field:
#: 0 kind (0 = empty, 1 = walksat, 2 = mcsat) · 1 best_cost (f) ·
#: 2 simulated_seconds (f) · 3 flips · 4 tries · 5 seconds (f) ·
#: 6 reached_target · 7 hitting_time (-1 = None) · 8 trace_len ·
#: 9 samples · 10 burn_in · 11 grounding_seconds (f) · 12-15 reserved.
RESULT_HEADER_SLOTS = 16

_KIND_EMPTY = 0
_KIND_WALKSAT = 1
_KIND_MCSAT = 2

#: Hard cap on the per-component trace region (slots of 3 elements each).
#: A WalkSAT trace records one point per best-cost improvement plus the
#: final observation, so the default sizing below covers real runs with
#: room to spare; anything larger falls back to the pickled queue.
RESULT_TRACE_CAP = 4096

#: Per-component result directory entry: ``(base_off, n_atoms,
#: trace_capacity)`` with ``base_off`` in 8-byte elements.  The value
#: region (``n_atoms`` elements right after the header) holds the atom
#: values — 0/1 ints for a MAP assignment, probability doubles for
#: marginals — in the component's packed ``atom_ids`` order; the trace
#: region holds ``trace_capacity`` ``(time, cost, flips)`` triples.
ResultDirectoryEntry = Tuple[int, int, int]


def _default_trace_capacity(n_atoms: int, n_clauses: int) -> int:
    return min(RESULT_TRACE_CAP, 64 + 2 * (n_atoms + n_clauses))


class ResultBufferSet:
    """Per-component result regions in one shared-memory segment.

    The reverse direction of :class:`ComponentBufferSet`: the parent
    sizes one region per component at pack time (atom values + trace
    slots + a fixed header), workers *write a finished result in place*
    and send only a tiny completion token through the result queue — no
    pickling of large assignments or marginal vectors.  A result that
    does not fit its reserved region (an oversized trace, an unexpected
    atom set) is never truncated: :meth:`write_outcome` refuses and the
    worker falls back to the pickled queue (the pool counts how often).

    Worker-side writes to a published segment are exactly what the
    ``fork-shm-publish`` rule exists to forbid — but here they are the
    design: each region is written by exactly one worker (the one that
    ran the component's task) strictly before the parent reads it (the
    completion token establishes the ordering), so there is no race and
    no nondeterminism.  The rule sanctions precisely this via the
    ``_result_region_writers`` marker below: the named methods may write
    result-region attributes (and nothing else).

    Concurrent request admission adds one more dimension: a segment
    packed with ``banks=N`` holds ``N`` independent copies of the whole
    per-component layout, so up to ``N`` in-flight requests can each
    have a live result for the *same* component index without
    clobbering each other.  Every write/read names its ``(index, bank)``
    pair; the pool assigns each admitted request a private bank for the
    duration of its run.
    """

    #: Sanctioned result-region writers (see the ``fork-shm-publish``
    #: rule): only these methods may write the ``*result*`` buffers.
    _result_region_writers = ("write_outcome",)

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        directory: List[ResultDirectoryEntry],
        owner: bool,
        banks: int = 1,
        bank_stride: int = 0,
    ) -> None:
        self._shm = shm
        self.directory = directory
        self._owner = owner
        self.banks = banks
        self._bank_stride = bank_stride
        self._result_ints = shm.buf.cast("q")
        self._result_floats = shm.buf.cast("d")

    @classmethod
    def pack(
        cls,
        components: Sequence[MRF],
        trace_capacity: Optional[int] = None,
        banks: int = 1,
    ) -> "ResultBufferSet":
        """Reserve ``banks`` result regions per component.

        ``trace_capacity`` overrides the per-component trace sizing (the
        fallback tests use a tiny capacity to force the pickled path);
        ``banks`` is the number of independent full copies of the layout
        — one per concurrently admitted request.
        """
        directory: List[ResultDirectoryEntry] = []
        total = 0
        for component in components:
            n_atoms = component.atom_count
            capacity = (
                _default_trace_capacity(n_atoms, component.clause_count)
                if trace_capacity is None
                else max(0, trace_capacity)
            )
            directory.append((total, n_atoms, capacity))
            total += RESULT_HEADER_SLOTS + n_atoms + 3 * capacity
        banks = max(1, banks)
        shm = shared_memory.SharedMemory(
            create=True, size=max(total, 1) * banks * 8
        )
        return cls(shm, directory, owner=True, banks=banks, bank_stride=total)

    def _region(self, index: int, bank: int) -> ResultDirectoryEntry:
        """The ``(base, n_atoms, capacity)`` triple for ``(index, bank)``."""
        if not 0 <= bank < self.banks:
            raise IndexError(f"result bank {bank} outside 0..{self.banks - 1}")
        base, n_atoms, capacity = self.directory[index]
        return base + bank * self._bank_stride, n_atoms, capacity

    # ------------------------------------------------------------------
    # Writing (worker side)
    # ------------------------------------------------------------------

    def write_outcome(
        self,
        index: int,
        result: object,
        simulated_seconds: float,
        atom_ids: Sequence[int],
        bank: int = 0,
    ) -> bool:
        """Ship one finished result through the component's region.

        Returns ``False`` — leaving the region untouched — whenever the
        result does not fit or does not match the packed atom set; the
        caller then falls back to the pickled queue.  Values are written
        in ``atom_ids`` (packed atom) order, which is exactly the
        insertion order of the driver-built result dictionaries, so the
        parent-side reconstruction is bit-identical, dict order included.
        ``bank`` selects the admitted request's private copy of the
        region, so interleaved requests never overwrite each other.
        """
        base, n_atoms, capacity = self._region(index, bank)
        ints = self._result_ints
        floats = self._result_floats
        value_off = base + RESULT_HEADER_SLOTS
        trace_off = value_off + n_atoms
        if isinstance(result, WalkSATResult):
            points = result.trace.points
            if len(points) > capacity:
                return False
            if len(result.best_assignment) != n_atoms or n_atoms != len(atom_ids):
                return False
            try:
                values = [result.best_assignment[atom_id] for atom_id in atom_ids]
            except KeyError:
                return False
            for position, value in enumerate(values):
                ints[value_off + position] = 1 if value else 0
            for slot, point in enumerate(points):
                floats[trace_off + 3 * slot] = point.time
                floats[trace_off + 3 * slot + 1] = point.cost
                ints[trace_off + 3 * slot + 2] = point.flips
            floats[base + 1] = result.best_cost
            floats[base + 2] = simulated_seconds
            ints[base + 3] = result.flips
            ints[base + 4] = result.tries
            floats[base + 5] = result.seconds
            ints[base + 6] = 1 if result.reached_target else 0
            ints[base + 7] = -1 if result.hitting_time is None else result.hitting_time
            ints[base + 8] = len(points)
            floats[base + 11] = result.trace.grounding_seconds
            ints[base] = _KIND_WALKSAT
            return True
        if isinstance(result, MarginalResult):
            if len(result.probabilities) != n_atoms or n_atoms != len(atom_ids):
                return False
            try:
                values = [result.probabilities[atom_id] for atom_id in atom_ids]
            except KeyError:
                return False
            for position, probability in enumerate(values):
                floats[value_off + position] = probability
            floats[base + 2] = simulated_seconds
            ints[base + 9] = result.samples
            ints[base + 10] = result.burn_in
            ints[base] = _KIND_MCSAT
            return True
        return False

    # ------------------------------------------------------------------
    # Reading (parent side)
    # ------------------------------------------------------------------

    def read_outcome(
        self,
        index: int,
        atom_ids: Sequence[int],
        trace_label: str = "",
        bank: int = 0,
    ) -> Tuple[object, float]:
        """Rebuild ``(result, simulated_seconds)`` from a written region.

        ``atom_ids`` must be the component's packed atom order (the
        parent reads it off the component MRF it packed); ``trace_label``
        restores the label the worker's driver options carried — labels
        travel with the task, not the region.  ``bank`` must match the
        bank the completion token's task was submitted with.
        """
        base, n_atoms, _capacity = self._region(index, bank)
        ints = self._result_ints
        floats = self._result_floats
        kind = ints[base]
        value_off = base + RESULT_HEADER_SLOTS
        trace_off = value_off + n_atoms
        if kind == _KIND_WALKSAT:
            assignment = {
                atom_id: bool(ints[value_off + position])
                for position, atom_id in enumerate(atom_ids)
            }
            trace = TimeCostTrace(
                label=trace_label, grounding_seconds=floats[base + 11]
            )
            trace.points = [
                TracePoint(
                    time=floats[trace_off + 3 * slot],
                    cost=floats[trace_off + 3 * slot + 1],
                    flips=ints[trace_off + 3 * slot + 2],
                )
                for slot in range(ints[base + 8])
            ]
            hitting = ints[base + 7]
            result: object = WalkSATResult(
                best_assignment=assignment,
                best_cost=floats[base + 1],
                flips=ints[base + 3],
                tries=ints[base + 4],
                seconds=floats[base + 5],
                trace=trace,
                reached_target=bool(ints[base + 6]),
                hitting_time=None if hitting < 0 else hitting,
            )
            return result, floats[base + 2]
        if kind == _KIND_MCSAT:
            probabilities = {
                atom_id: floats[value_off + position]
                for position, atom_id in enumerate(atom_ids)
            }
            result = MarginalResult(
                probabilities, samples=ints[base + 9], burn_in=ints[base + 10]
            )
            return result, floats[base + 2]
        raise RuntimeError(
            f"result region {index} read before any worker wrote it (kind {kind})"
        )

    def outcome_nbytes(self, index: int, bank: int = 0) -> int:
        """Bytes the last shipped result actually occupied (telemetry)."""
        base, n_atoms, _capacity = self._region(index, bank)
        trace_len = self._result_ints[base + 8]
        return 8 * (RESULT_HEADER_SLOTS + n_atoms + 3 * trace_len)

    def __len__(self) -> int:
        return len(self.directory)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release this process's view (workers call this on shutdown)."""
        self._result_ints.release()
        self._result_floats.release()
        self._shm.close()

    def destroy(self) -> None:
        """Release and unlink the segment (owner only, after the run)."""
        self.close()
        if self._owner:
            self._shm.unlink()
