"""The multiprocess worker pool (and its serial/thread stand-ins).

One task vocabulary serves every parallel backend: a
:class:`ComponentTask` names a packed component by index and carries the
small, picklable run parameters (driver options, the derived child-stream
seed, the flip budget).  The function that executes a task —
:func:`execute_component_task` — is the *same code* on every backend:

* the **serial** and **threads** backends call it in-process against the
  caller's component MRFs (and, for WalkSAT, the caller's cached kernel
  states — the PR 2 state-reuse lifecycle);
* the **processes** backend ships the task to a worker, which rebuilds the
  component from the shared-memory buffer set
  (:class:`~repro.parallel.buffers.ComponentBufferSet`) on first use,
  caches the MRF *and* its kernel state, and runs the identical function.

Finished results ship back through shared memory, not pickling: every
pool also packs a :class:`~repro.parallel.buffers.ResultBufferSet` —
one reserved region per component per *result bank* — and workers write
each result in place, replying with a tiny completion token
``(request id, index, worker id, channel)``.  A result that does not
fit its region (oversized trace, unexpected atom set) falls back to the
pickled queue, counted but never truncated; shipping telemetry is kept
per admitted request (:meth:`WorkerPool.finish_request` hands the
scheduler counters attributable to exactly one request) with
:attr:`WorkerPool.shm_shipped` / :attr:`WorkerPool.pickle_shipped` /
:attr:`WorkerPool.shm_bytes` still accumulating pool-lifetime totals.

Concurrent admission: tasks are tagged ``(request_id, index)``, so one
pool can multiplex several requests' task streams over the same worker
set and shared task queue.  Each admitted request checks out a private
result bank for its lifetime; completion tokens that belong to another
request are stashed and handed to that request's draining thread, so
every request sees exactly its own completions in completion order —
the same stream it would see running alone.

Because each task carries its own derived seed and runs the existing
drivers unchanged, results are bit-for-bit identical across backends and
worker counts; only wall-clock time changes.  Workers are forked, so the
pool refuses to start when the ``fork`` start method is unavailable
(callers resolve ``auto`` to ``threads`` there).
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.state import make_search_state
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.obs.metrics import MetricsRegistry
from repro.parallel.buffers import ComponentBufferSet, ResultBufferSet
from repro.utils.clock import CostModel, SimulatedClock, wall_now, wall_sleep
from repro.utils.rng import RandomSource

_logger = logging.getLogger(__name__)


@dataclass
class ComponentTask:
    """One unit of work: search (or sample) one component.

    ``index`` is the component's position in the caller's component list —
    it names the packed buffers on the processes backend and the result
    slot on every backend.  ``seed`` is the derived child-stream seed
    (``parent_rng.spawn(index + 1).seed``), computed by the caller so the
    stream is a pure function of the run seed and the component id,
    independent of which worker runs the task or when.

    ``request_id`` tags the task with the admitted request it belongs to
    — the pool routes the completion token back to whichever thread is
    draining that request.  ``result_bank`` is assigned by the pool at
    submit time: the request's private copy of the shared-memory result
    regions (``-1`` forces the pickled fallback when no bank is free).
    Neither field feeds the search itself, so they cannot perturb
    results.
    """

    index: int
    kind: str  # "walksat" | "mcsat"
    seed: Optional[int]
    walksat: Optional[WalkSATOptions] = None
    mcsat: Optional[MCSatOptions] = None
    cost_model: CostModel = field(default_factory=CostModel)
    initial_assignment: Optional[Dict[int, bool]] = None
    request_id: int = 0
    result_bank: int = 0
    #: When True, the worker timestamps its phases (state setup, kernel
    #: search, result shipping) on the shared monotonic clock and ships
    #: them on the completion token — bounded by
    #: ``WORKER_TASK_EVENT_BUDGET`` — for the request's span tree.
    #: Pure telemetry: never read by the search itself.
    trace_events: bool = False


@dataclass
class ComponentOutcome:
    """A task's result plus its deterministic simulated duration."""

    index: int
    result: object  # WalkSATResult | MarginalResult
    simulated_seconds: float


def execute_component_task(
    task: ComponentTask, mrf: MRF, state=None
) -> ComponentOutcome:
    """Run one task against a component MRF (every backend funnels here).

    For WalkSAT tasks this reproduces the serial component search exactly:
    a fresh :class:`WalkSAT` over the task's derived RNG stream and its own
    simulated clock, run on a (reused or fresh) kernel state —
    ``run_on_state`` rewrites reused states in place at the start of every
    try, so a cached state is bit-identical to a fresh one.
    """
    if task.kind == "walksat":
        options = task.walksat
        if state is None:
            state = make_search_state(mrf, backend=options.kernel_backend)
        clock = SimulatedClock(task.cost_model)
        searcher = WalkSAT(options, RandomSource(task.seed), clock)
        result = searcher.run_on_state(state, task.initial_assignment)
        return ComponentOutcome(task.index, result, clock.now())
    if task.kind == "mcsat":
        sampler = MCSat(task.mcsat, RandomSource(task.seed))
        result = sampler.run(mrf, task.initial_assignment)
        return ComponentOutcome(task.index, result, 0.0)
    raise ValueError(f"unknown component task kind {task.kind!r}")


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------

#: Upper bound on cached ``(component, kernel_backend)`` states per worker.
#: A persistent pool serving many requests would otherwise grow one kernel
#: state per component it ever touched; evicting the least recently used
#: state is bit-safe because ``run_on_state`` rewrites reused states in
#: place at the start of every try — a rebuilt state is identical.
WORKER_STATE_CACHE_LIMIT = 64

#: Completion-token channel tags (the only payloads besides errors).
SHIPPED_SHM = "shm"
SHIPPED_PICKLE = "pickle"

#: Upper bound on span/event records one task may ship on its completion
#: token.  Worker tracing rides the same queue as completion tokens, so
#: the budget keeps a traced task's token small and its cost bounded no
#: matter what the worker instruments.
WORKER_TASK_EVENT_BUDGET = 8


class BoundedStateCache:
    """A small LRU map for worker-side kernel states."""

    def __init__(self, limit: int = WORKER_STATE_CACHE_LIMIT) -> None:
        self.limit = max(1, limit)
        self._entries: "OrderedDict[Tuple[int, str], object]" = OrderedDict()

    def get(self, key: Tuple[int, str]) -> Optional[object]:
        state = self._entries.get(key)
        if state is not None:
            self._entries.move_to_end(key)
        return state

    def put(self, key: Tuple[int, str], state: object) -> None:
        self._entries[key] = state
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def _worker_main(
    buffers: ComponentBufferSet,
    results: ResultBufferSet,
    task_queue,
    result_queue,
    worker_id: int,
    stall_seconds: float,
) -> None:
    """Worker loop: rebuild-and-cache components, execute tasks, reply.

    The buffer sets are inherited through fork; MRFs and kernel states are
    cached per (component, kernel backend) — bounded by
    ``WORKER_STATE_CACHE_LIMIT`` — so a component re-dispatched across
    rounds (or across a persistent session's requests) reuses its state
    exactly like the serial driver does.

    A finished result is written into the ``(component, result bank)``
    shared-memory region the task names and acknowledged with a
    ``(request_id, index, None, None, worker_id, "shm", events)`` token
    (``events`` is the bounded per-task span list when the task asked to
    be traced, else ``None``); when
    the region refuses it (result too large for the reservation) — or
    the task carries no bank (``result_bank < 0``) — the full outcome
    rides the queue instead, tagged ``"pickle"``.  The token is sent
    only *after* the region write completes, so the parent's read is
    ordered-after the write without any locking.  ``stall_seconds`` is
    the injected-slow-worker test hook: it delays this worker before
    every task, forcing maximal stealing skew while leaving results
    untouched.
    """
    states = BoundedStateCache()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            if stall_seconds > 0.0:
                wall_sleep(stall_seconds)
            try:
                traced = task.trace_events
                setup_start = wall_now() if traced else 0.0
                mrf = buffers.component(task.index)
                state = None
                if task.kind == "walksat":
                    key = (task.index, task.walksat.kernel_backend)
                    state = states.get(key)
                    if state is None:
                        state = make_search_state(mrf, backend=task.walksat.kernel_backend)
                        states.put(key, state)
                search_start = wall_now() if traced else 0.0
                outcome = execute_component_task(task, mrf, state)
                search_end = wall_now() if traced else 0.0
                shipped_shm = task.result_bank >= 0 and results.write_outcome(
                    task.index,
                    outcome.result,
                    outcome.simulated_seconds,
                    mrf.atom_ids,
                    bank=task.result_bank,
                )
                events = None
                if traced:
                    ship_end = wall_now()
                    events = [
                        {"name": "state-setup", "start": setup_start, "end": search_start},
                        {"name": "kernel-search", "start": search_start, "end": search_end},
                        {"name": "ship-result", "start": search_end, "end": ship_end},
                    ][:WORKER_TASK_EVENT_BUDGET]
                if shipped_shm:
                    result_queue.put(
                        (task.request_id, task.index, None, None, worker_id, SHIPPED_SHM, events)
                    )
                else:
                    result_queue.put(
                        (task.request_id, task.index, outcome, None, worker_id, SHIPPED_PICKLE, events)
                    )
            except BaseException as error:  # surface, don't hang the parent
                result_queue.put(
                    (task.request_id, task.index, None, repr(error), worker_id, None, None)
                )
    finally:
        buffers.close()
        results.close()


class WorkerPool:
    """A pool of forked workers sharing component and result buffer sets.

    The pool is reusable across runs (the engine session keeps one alive
    between requests — workers' cached MRFs and kernel states stay warm,
    and the result region is reused request after request) and is a
    context manager: ``with WorkerPool(...) as pool`` guarantees both
    shared-memory segments are unlinked even when the run raises.  The
    constructor itself cleans up on failure, so an exception between
    packing the buffers and starting the workers can never leak a
    segment.  Never repack buffers on a live pool — build a new pool (the
    ``fork-pool-lifecycle`` analysis rule enforces this).

    ``trace_capacity`` overrides the per-component result-region trace
    sizing (tests force the pickled fallback with a tiny capacity);
    ``stall_worker`` is the injected-slow-worker test hook: ``(worker
    index, seconds)`` delays that worker before every task it takes;
    ``result_banks`` is the number of requests that may be in flight at
    once — each gets a private copy of the result regions (a request
    admitted beyond the bank count still runs, shipping its results
    through the pickled fallback).
    """

    def __init__(
        self,
        components: Sequence[MRF],
        workers: int,
        trace_capacity: Optional[int] = None,
        stall_worker: Optional[Tuple[int, float]] = None,
        result_banks: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        context = multiprocessing.get_context("fork")
        self.buffers = ComponentBufferSet.pack(components)
        self.result_buffers = ResultBufferSet.pack(
            components, trace_capacity, banks=result_banks
        )
        self._packed: List[MRF] = list(components)
        self._closed = False
        #: Dotted-name counters (``pool.*``) — shared with the owning
        #: session's registry when one is injected, private otherwise so
        #: the counters are always present for tests and summaries.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._processes: List[multiprocessing.process.BaseProcess] = []
        #: Shipping telemetry, cumulative over the pool's lifetime;
        #: per-request counters (see :meth:`finish_request`) are what the
        #: scheduler reports, so interleaved requests stay attributable.
        self.shm_shipped = 0
        self.pickle_shipped = 0
        self.shm_bytes = 0
        self._inflight: Dict[Tuple[int, int], ComponentTask] = {}
        #: Completion tokens read off the shared queue by a thread
        #: draining a *different* request, parked for their owner.
        self._parked: Dict[int, Deque[tuple]] = {}
        self._route_lock = threading.Lock()
        #: Wakes request threads the instant a token is parked for them;
        #: one thread at a time (the elected drainer) blocks on the
        #: results queue so a parked token never waits out a poll cycle.
        self._route_cond = threading.Condition(self._route_lock)
        self._drainer_busy = False
        self._bank_of: Dict[int, int] = {}
        self._free_banks: List[int] = list(range(max(1, result_banks)))
        self._request_shipping: Dict[int, List[int]] = {}
        #: Worker-emitted span records, stashed per ``(request, index)``
        #: until the scheduler stitches them (:meth:`take_task_events`).
        self._task_events: Dict[Tuple[int, int], dict] = {}
        self._pickle_warned: set = set()
        try:
            self._tasks = context.Queue()
            self._results = context.Queue()
            self.workers = max(1, min(workers, len(components) or 1))
            for worker_id in range(self.workers):
                stall_seconds = 0.0
                if stall_worker is not None and stall_worker[0] == worker_id:
                    stall_seconds = float(stall_worker[1])
                self._processes.append(
                    context.Process(
                        target=_worker_main,
                        args=(
                            self.buffers,
                            self.result_buffers,
                            self._tasks,
                            self._results,
                            worker_id,
                            stall_seconds,
                        ),
                        daemon=True,
                    )
                )
            for process in self._processes:
                process.start()
        except BaseException:
            # Undo a partial start: without this, the shared-memory
            # segments (and any already-forked workers) would leak.
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join()
            self._closed = True
            self.buffers.destroy()
            self.result_buffers.destroy()
            raise

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    def matches(self, components: Sequence[MRF]) -> bool:
        """True when this pool was packed from exactly these components.

        Identity comparison, element-wise: the packed buffers snapshot the
        component MRFs, so reuse is only sound for the same objects (the
        session invalidates the pool when grounding produces new ones).
        """
        if self._closed or len(components) != len(self._packed):
            return False
        return all(ours is theirs for ours, theirs in zip(self._packed, components))

    def submit(self, task: ComponentTask) -> None:
        """Queue one task, tagging it with its request's result bank.

        The first task of a request checks out a private bank for the
        request's lifetime (returned by :meth:`finish_request`); when
        every bank is taken the task is tagged ``-1`` and its results
        ride the pickled fallback — correct, just slower.  Exhaustion is
        never silent: it counts ``pool.bank_exhausted`` and logs one
        structured warning per starved request.
        """
        checked_out = False
        exhausted = False
        with self._route_lock:
            bank = self._bank_of.get(task.request_id)
            if bank is None:
                bank = self._free_banks.pop(0) if self._free_banks else -1
                self._bank_of[task.request_id] = bank
                checked_out = bank >= 0
                exhausted = bank < 0
            self._inflight[(task.request_id, task.index)] = task
        if checked_out:
            self.metrics.increment("pool.bank_checkouts")
        elif exhausted:
            self.metrics.increment("pool.bank_exhausted")
            _logger.warning(
                "result-bank exhaustion: request_id=%d has no free result bank "
                "(banks=%d); results will ship via the pickled fallback",
                task.request_id,
                self.result_buffers.banks,
            )
        task.result_bank = bank
        self._tasks.put(task)

    def next_outcome(self, request_id: int = 0) -> Tuple[ComponentOutcome, int]:
        """Collect one finished task of ``request_id``: ``(outcome, worker id)``.

        Blocks until one of *this request's* in-flight tasks completes
        (the work-stealing drain: the scheduler reacts to each
        completion, not to a wave barrier).  Tokens belonging to other
        admitted requests are parked for their own draining threads (see
        :meth:`_route_token`), so each request observes exactly the
        completion stream it would see running alone.
        """
        token = self._route_token(request_id)
        _, index, payload, error, worker_id, channel, events = token
        with self._route_lock:
            task = self._inflight.pop((request_id, index), None)
            if events is not None:
                self._task_events[(request_id, index)] = {
                    "worker": worker_id,
                    "channel": channel,
                    "events": events,
                }
        if error is not None:
            self.shutdown()
            raise RuntimeError(f"parallel component task failed: component {index}: {error}")
        shipping = self._shipping_for(request_id)
        if channel == SHIPPED_SHM:
            if task is None:
                # The token names a task this pool never recorded in
                # flight — an internal routing error.  Guessing a bank
                # would read another request's live result region, so
                # fail loudly instead.
                raise RuntimeError(
                    f"completion token for component {index} of request "
                    f"{request_id} has no in-flight task record"
                )
            bank = task.result_bank
            trace_label = (
                task.walksat.trace_label if task.walksat is not None else ""
            )
            result, simulated_seconds = self.result_buffers.read_outcome(
                index, self._packed[index].atom_ids, trace_label, bank=bank
            )
            nbytes = self.result_buffers.outcome_nbytes(index, bank=bank)
            with self._route_lock:
                self.shm_shipped += 1
                self.shm_bytes += nbytes
                shipping[0] += 1
                shipping[2] += nbytes
            self.metrics.increment("pool.shm_shipped")
            self.metrics.increment("pool.shm_bytes", nbytes)
            return ComponentOutcome(index, result, simulated_seconds), worker_id
        with self._route_lock:
            self.pickle_shipped += 1
            shipping[1] += 1
            warn_fallback = request_id not in self._pickle_warned
            if warn_fallback:
                self._pickle_warned.add(request_id)
        self.metrics.increment("pool.pickle_shipped")
        if warn_fallback:
            _logger.warning(
                "pickled-fallback shipping: request_id=%d component=%d result "
                "did not ship via shared memory (exhausted bank or oversized "
                "result); falling back to the pickled queue",
                request_id,
                index,
            )
        return payload, worker_id

    def _route_token(self, request_id: int) -> tuple:
        """Return the next completion token belonging to ``request_id``.

        One thread at a time — the elected drainer — blocks on the
        shared results queue; every other admitted request's thread
        waits on the routing condition instead.  A drainer that pulls a
        token for a different request parks it on the owner's deque and
        wakes everyone, so the owner claims it immediately rather than
        waiting out a poll cycle.  The drainer polls with a timeout so a
        worker dying without replying (OOM kill, segfault in an
        extension) surfaces as a RuntimeError instead of blocking the
        parent forever — ``_worker_main`` only converts *Python*
        exceptions into error replies.
        """
        while True:
            claimed = None
            with self._route_cond:
                while True:
                    parked = self._parked.get(request_id)
                    if parked:
                        claimed = parked.popleft()
                        break
                    if not self._drainer_busy:
                        self._drainer_busy = True
                        break
                    # Timed wait for liveness: if the drainer dies with an
                    # exception after the notify, someone must take over.
                    self._route_cond.wait(timeout=0.5)
            if claimed is not None:
                self.metrics.increment("pool.parked_token_wakeups")
                return claimed
            token = None
            try:
                try:
                    token = self._results.get(timeout=0.5)
                except queue_module.Empty:
                    dead = [p for p in self._processes if not p.is_alive()]
                    if dead:
                        self.shutdown()
                        raise RuntimeError(
                            f"{len(dead)} parallel worker(s) died before replying "
                            f"(exit codes {[p.exitcode for p in dead]})"
                        )
            finally:
                parked_for_other = False
                with self._route_cond:
                    self._drainer_busy = False
                    if token is not None and token[0] != request_id:
                        self._parked.setdefault(token[0], deque()).append(token)
                        token = None
                        parked_for_other = True
                    self._route_cond.notify_all()
                if parked_for_other:
                    self.metrics.increment("pool.parked_tokens")
            if token is not None:
                return token

    def _shipping_for(self, request_id: int) -> List[int]:
        """The request's ``[shm, pickle, bytes]`` counters (created lazily)."""
        with self._route_lock:
            return self._request_shipping.setdefault(request_id, [0, 0, 0])

    def take_task_events(self, request_id: int) -> Dict[int, dict]:
        """Pop the worker-emitted span records of one request's tasks.

        Returns ``{component index: {"worker", "channel", "events"}}`` —
        the scheduler stitches these under the request's span tree in
        deterministic component order.  Only populated for tasks that
        asked to be traced (``ComponentTask.trace_events``).
        """
        with self._route_lock:
            taken = {
                key[1]: self._task_events.pop(key)
                for key in [k for k in self._task_events if k[0] == request_id]
            }
        return taken

    def finish_request(self, request_id: int) -> Tuple[int, int, int]:
        """Close out one admitted request: return its bank and counters.

        Returns the ``(shm_shipped, pickle_shipped, shm_bytes)`` shipped
        for exactly this request — the scheduler reports these, so a
        warm pool's telemetry never bleeds across requests — and frees
        the request's result bank for the next admission.
        """
        with self._route_lock:
            bank = self._bank_of.pop(request_id, None)
            if bank is not None and bank >= 0:
                self._free_banks.append(bank)
                self._free_banks.sort()
            self._parked.pop(request_id, None)
            self._pickle_warned.discard(request_id)
            for key in [k for k in self._task_events if k[0] == request_id]:
                del self._task_events[key]
            shm, pickled, nbytes = self._request_shipping.pop(request_id, (0, 0, 0))
        return shm, pickled, nbytes

    def drain(self, count: int, request_id: int = 0) -> List[ComponentOutcome]:
        """Collect ``count`` results of one request (any completion order)."""
        return [self.next_outcome(request_id)[0] for _ in range(count)]

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            self._tasks.put(None)
        for process in self._processes:
            process.join()
        self.buffers.destroy()
        self.result_buffers.destroy()
