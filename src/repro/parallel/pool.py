"""The multiprocess worker pool (and its serial/thread stand-ins).

One task vocabulary serves every parallel backend: a
:class:`ComponentTask` names a packed component by index and carries the
small, picklable run parameters (driver options, the derived child-stream
seed, the flip budget).  The function that executes a task —
:func:`execute_component_task` — is the *same code* on every backend:

* the **serial** and **threads** backends call it in-process against the
  caller's component MRFs (and, for WalkSAT, the caller's cached kernel
  states — the PR 2 state-reuse lifecycle);
* the **processes** backend ships the task to a worker, which rebuilds the
  component from the shared-memory buffer set
  (:class:`~repro.parallel.buffers.ComponentBufferSet`) on first use,
  caches the MRF *and* its kernel state, and runs the identical function.

Finished results ship back through shared memory, not pickling: every
pool also packs a :class:`~repro.parallel.buffers.ResultBufferSet` —
one reserved region per component — and workers write each result in
place, replying with a tiny completion token ``(index, worker id,
channel)``.  A result that does not fit its region (oversized trace,
unexpected atom set) falls back to the pickled queue, counted but never
truncated; :attr:`WorkerPool.shm_shipped` / :attr:`WorkerPool.pickle_shipped`
/ :attr:`WorkerPool.shm_bytes` expose the split per pool lifetime (the
scheduler reports per-run deltas).

Because each task carries its own derived seed and runs the existing
drivers unchanged, results are bit-for-bit identical across backends and
worker counts; only wall-clock time changes.  Workers are forked, so the
pool refuses to start when the ``fork`` start method is unavailable
(callers resolve ``auto`` to ``threads`` there).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.inference.mcsat import MCSat, MCSatOptions
from repro.inference.state import make_search_state
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.parallel.buffers import ComponentBufferSet, ResultBufferSet
from repro.utils.clock import CostModel, SimulatedClock, wall_sleep
from repro.utils.rng import RandomSource


@dataclass
class ComponentTask:
    """One unit of work: search (or sample) one component.

    ``index`` is the component's position in the caller's component list —
    it names the packed buffers on the processes backend and the result
    slot on every backend.  ``seed`` is the derived child-stream seed
    (``parent_rng.spawn(index + 1).seed``), computed by the caller so the
    stream is a pure function of the run seed and the component id,
    independent of which worker runs the task or when.
    """

    index: int
    kind: str  # "walksat" | "mcsat"
    seed: Optional[int]
    walksat: Optional[WalkSATOptions] = None
    mcsat: Optional[MCSatOptions] = None
    cost_model: CostModel = field(default_factory=CostModel)
    initial_assignment: Optional[Dict[int, bool]] = None


@dataclass
class ComponentOutcome:
    """A task's result plus its deterministic simulated duration."""

    index: int
    result: object  # WalkSATResult | MarginalResult
    simulated_seconds: float


def execute_component_task(
    task: ComponentTask, mrf: MRF, state=None
) -> ComponentOutcome:
    """Run one task against a component MRF (every backend funnels here).

    For WalkSAT tasks this reproduces the serial component search exactly:
    a fresh :class:`WalkSAT` over the task's derived RNG stream and its own
    simulated clock, run on a (reused or fresh) kernel state —
    ``run_on_state`` rewrites reused states in place at the start of every
    try, so a cached state is bit-identical to a fresh one.
    """
    if task.kind == "walksat":
        options = task.walksat
        if state is None:
            state = make_search_state(mrf, backend=options.kernel_backend)
        clock = SimulatedClock(task.cost_model)
        searcher = WalkSAT(options, RandomSource(task.seed), clock)
        result = searcher.run_on_state(state, task.initial_assignment)
        return ComponentOutcome(task.index, result, clock.now())
    if task.kind == "mcsat":
        sampler = MCSat(task.mcsat, RandomSource(task.seed))
        result = sampler.run(mrf, task.initial_assignment)
        return ComponentOutcome(task.index, result, 0.0)
    raise ValueError(f"unknown component task kind {task.kind!r}")


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------

#: Upper bound on cached ``(component, kernel_backend)`` states per worker.
#: A persistent pool serving many requests would otherwise grow one kernel
#: state per component it ever touched; evicting the least recently used
#: state is bit-safe because ``run_on_state`` rewrites reused states in
#: place at the start of every try — a rebuilt state is identical.
WORKER_STATE_CACHE_LIMIT = 64

#: Completion-token channel tags (the only payloads besides errors).
SHIPPED_SHM = "shm"
SHIPPED_PICKLE = "pickle"


class BoundedStateCache:
    """A small LRU map for worker-side kernel states."""

    def __init__(self, limit: int = WORKER_STATE_CACHE_LIMIT) -> None:
        self.limit = max(1, limit)
        self._entries: "OrderedDict[Tuple[int, str], object]" = OrderedDict()

    def get(self, key: Tuple[int, str]) -> Optional[object]:
        state = self._entries.get(key)
        if state is not None:
            self._entries.move_to_end(key)
        return state

    def put(self, key: Tuple[int, str], state: object) -> None:
        self._entries[key] = state
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def _worker_main(
    buffers: ComponentBufferSet,
    results: ResultBufferSet,
    task_queue,
    result_queue,
    worker_id: int,
    stall_seconds: float,
) -> None:
    """Worker loop: rebuild-and-cache components, execute tasks, reply.

    The buffer sets are inherited through fork; MRFs and kernel states are
    cached per (component, kernel backend) — bounded by
    ``WORKER_STATE_CACHE_LIMIT`` — so a component re-dispatched across
    rounds (or across a persistent session's requests) reuses its state
    exactly like the serial driver does.

    A finished result is written into the component's shared-memory
    result region and acknowledged with a ``(index, None, None,
    worker_id, "shm")`` token; when the region refuses it (result too
    large for the reservation) the full outcome rides the queue instead,
    tagged ``"pickle"``.  The token is sent only *after* the region write
    completes, so the parent's read is ordered-after the write without
    any locking.  ``stall_seconds`` is the injected-slow-worker test
    hook: it delays this worker before every task, forcing maximal
    stealing skew while leaving results untouched.
    """
    states = BoundedStateCache()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            if stall_seconds > 0.0:
                wall_sleep(stall_seconds)
            try:
                mrf = buffers.component(task.index)
                state = None
                if task.kind == "walksat":
                    key = (task.index, task.walksat.kernel_backend)
                    state = states.get(key)
                    if state is None:
                        state = make_search_state(mrf, backend=task.walksat.kernel_backend)
                        states.put(key, state)
                outcome = execute_component_task(task, mrf, state)
                if results.write_outcome(
                    task.index, outcome.result, outcome.simulated_seconds, mrf.atom_ids
                ):
                    result_queue.put((task.index, None, None, worker_id, SHIPPED_SHM))
                else:
                    result_queue.put(
                        (task.index, outcome, None, worker_id, SHIPPED_PICKLE)
                    )
            except BaseException as error:  # surface, don't hang the parent
                result_queue.put((task.index, None, repr(error), worker_id, None))
    finally:
        buffers.close()
        results.close()


class WorkerPool:
    """A pool of forked workers sharing component and result buffer sets.

    The pool is reusable across runs (the engine session keeps one alive
    between requests — workers' cached MRFs and kernel states stay warm,
    and the result region is reused request after request) and is a
    context manager: ``with WorkerPool(...) as pool`` guarantees both
    shared-memory segments are unlinked even when the run raises.  The
    constructor itself cleans up on failure, so an exception between
    packing the buffers and starting the workers can never leak a
    segment.  Never repack buffers on a live pool — build a new pool (the
    ``fork-pool-lifecycle`` analysis rule enforces this).

    ``trace_capacity`` overrides the per-component result-region trace
    sizing (tests force the pickled fallback with a tiny capacity);
    ``stall_worker`` is the injected-slow-worker test hook: ``(worker
    index, seconds)`` delays that worker before every task it takes.
    """

    def __init__(
        self,
        components: Sequence[MRF],
        workers: int,
        trace_capacity: Optional[int] = None,
        stall_worker: Optional[Tuple[int, float]] = None,
    ) -> None:
        context = multiprocessing.get_context("fork")
        self.buffers = ComponentBufferSet.pack(components)
        self.result_buffers = ResultBufferSet.pack(components, trace_capacity)
        self._packed: List[MRF] = list(components)
        self._closed = False
        self._processes: List[multiprocessing.process.BaseProcess] = []
        #: Shipping telemetry, cumulative over the pool's lifetime; the
        #: scheduler snapshots these around a run to report deltas.
        self.shm_shipped = 0
        self.pickle_shipped = 0
        self.shm_bytes = 0
        self._inflight: Dict[int, ComponentTask] = {}
        try:
            self._tasks = context.Queue()
            self._results = context.Queue()
            self.workers = max(1, min(workers, len(components) or 1))
            for worker_id in range(self.workers):
                stall_seconds = 0.0
                if stall_worker is not None and stall_worker[0] == worker_id:
                    stall_seconds = float(stall_worker[1])
                self._processes.append(
                    context.Process(
                        target=_worker_main,
                        args=(
                            self.buffers,
                            self.result_buffers,
                            self._tasks,
                            self._results,
                            worker_id,
                            stall_seconds,
                        ),
                        daemon=True,
                    )
                )
            for process in self._processes:
                process.start()
        except BaseException:
            # Undo a partial start: without this, the shared-memory
            # segments (and any already-forked workers) would leak.
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join()
            self._closed = True
            self.buffers.destroy()
            self.result_buffers.destroy()
            raise

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    def matches(self, components: Sequence[MRF]) -> bool:
        """True when this pool was packed from exactly these components.

        Identity comparison, element-wise: the packed buffers snapshot the
        component MRFs, so reuse is only sound for the same objects (the
        session invalidates the pool when grounding produces new ones).
        """
        if self._closed or len(components) != len(self._packed):
            return False
        return all(ours is theirs for ours, theirs in zip(self._packed, components))

    def submit(self, task: ComponentTask) -> None:
        self._inflight[task.index] = task
        self._tasks.put(task)

    def next_outcome(self) -> Tuple[ComponentOutcome, int]:
        """Collect one finished task: ``(outcome, worker id)``.

        Blocks until any in-flight task completes (the work-stealing
        drain: the scheduler reacts to each completion, not to a wave
        barrier).  Polls with a timeout so a worker dying without
        replying (OOM kill, segfault in an extension) surfaces as a
        RuntimeError instead of blocking the parent forever —
        ``_worker_main`` only converts *Python* exceptions into error
        replies.
        """
        while True:
            try:
                index, payload, error, worker_id, channel = self._results.get(
                    timeout=0.5
                )
            except queue_module.Empty:
                dead = [p for p in self._processes if not p.is_alive()]
                if dead:
                    self.shutdown()
                    raise RuntimeError(
                        f"{len(dead)} parallel worker(s) died before replying "
                        f"(exit codes {[p.exitcode for p in dead]})"
                    )
                continue
            break
        task = self._inflight.pop(index, None)
        if error is not None:
            self.shutdown()
            raise RuntimeError(f"parallel component task failed: component {index}: {error}")
        if channel == SHIPPED_SHM:
            trace_label = ""
            if task is not None and task.walksat is not None:
                trace_label = task.walksat.trace_label
            result, simulated_seconds = self.result_buffers.read_outcome(
                index, self._packed[index].atom_ids, trace_label
            )
            self.shm_shipped += 1
            self.shm_bytes += self.result_buffers.outcome_nbytes(index)
            return ComponentOutcome(index, result, simulated_seconds), worker_id
        self.pickle_shipped += 1
        return payload, worker_id

    def drain(self, count: int) -> List[ComponentOutcome]:
        """Collect ``count`` results (any completion order)."""
        return [self.next_outcome()[0] for _ in range(count)]

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            self._tasks.put(None)
        for process in self._processes:
            process.join()
        self.buffers.destroy()
        self.result_buffers.destroy()
