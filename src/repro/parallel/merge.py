"""Deterministic merging of per-component (and per-partition) results.

Every parallel backend returns its per-component results in component
order (see :mod:`repro.parallel.scheduler`), and every component's search
runs on an RNG stream derived only from the run seed and the component id
(``rng.spawn(index + 1)``).  Merging is therefore pure bookkeeping — the
combined assignment, cost, flips and trace are bit-for-bit identical to
the serial backend regardless of worker count or completion order:

* :func:`merge_walksat_results` — the component-search combine: union of
  per-component best assignments, costs summed in component order (float
  addition order matters for bit-parity), traces merged with the existing
  :func:`~repro.inference.tracing.merge_traces`.
* :func:`merge_marginal_results` — the MC-SAT combine: components are
  disjoint atom sets, so the union of per-component marginal dictionaries
  (in component order) is the joint marginal estimate.
* :func:`gauss_seidel_refine` — the *partition* combine for oversized
  components (Algorithm 3): partitions share cut clauses, so after an
  embarrassingly parallel first pass (each partition searched with the
  others frozen at the initial assignment), the merged state seeds
  Gauss-Seidel rounds across the cut atoms
  (:class:`~repro.inference.gauss_seidel.GaussSeidelSearch` unchanged),
  which reconciles the cut deterministically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.inference.gauss_seidel import (
    GaussSeidelResult,
    GaussSeidelSearch,
    conditioned_mrf,
)
from repro.inference.mcsat import MarginalResult
from repro.inference.tracing import merge_traces
from repro.inference.walksat import WalkSATOptions, WalkSATResult
from repro.mrf.graph import MRF
from repro.utils.clock import SimulatedClock
from repro.utils.rng import RandomSource


def merge_walksat_results(
    results: Sequence[WalkSATResult], trace_label: str = "tuffy"
):
    """Combine per-component WalkSAT results (component order).

    Returns ``(best_assignment, best_cost, total_flips, trace)``; infinite
    per-component costs (a component whose every try died before finding a
    finite state) are excluded from the sum, like the serial driver.
    """
    best_assignment: Dict[int, bool] = {}
    best_cost = 0.0
    total_flips = 0
    for result in results:
        best_assignment.update(result.best_assignment)
        if not math.isinf(result.best_cost):
            best_cost += result.best_cost
        total_flips += result.flips
    trace = merge_traces([result.trace for result in results], label=trace_label)
    return best_assignment, best_cost, total_flips, trace


def merge_marginal_results(
    results: Sequence[MarginalResult], samples: int, burn_in: int
) -> MarginalResult:
    """Combine per-component marginal estimates into one result.

    Components partition the atom set, so the dictionaries are disjoint;
    they are merged in component order for a deterministic iteration
    order.  ``samples``/``burn_in`` are the per-component settings (every
    component draws the same number of samples).
    """
    probabilities: Dict[int, float] = {}
    for result in results:
        probabilities.update(result.probabilities)
    return MarginalResult(probabilities, samples, burn_in)


def gauss_seidel_refine(
    full_mrf: MRF,
    partitions: Sequence[Sequence[int]],
    options: WalkSATOptions,
    rng: RandomSource,
    rounds: int,
    clock: Optional[SimulatedClock] = None,
    parallel_backend: str = "serial",
    workers: int = 1,
    initial_assignment: Optional[Mapping[int, bool]] = None,
    pool=None,
    dispatch: str = "steal",
) -> GaussSeidelResult:
    """Partition-parallel first pass, then Gauss-Seidel rounds on the cut.

    Pass one searches every partition *independently* — each partition's
    conditioned MRF freezes the other partitions at the initial assignment
    (all-false by default), so the tasks touch disjoint atoms and can run
    on any parallel backend; each partition draws its RNG from
    ``rng.spawn(500_000 + index + 1)`` (salted away from the streams the
    Gauss-Seidel sweeps spawn per part).  The merged assignment then seeds
    the standard Gauss-Seidel sweeps — sequential by construction (part
    ``i`` conditions on the fresh state of parts ``< i``) — which repair
    the cut clauses the first pass ignored.  Deterministic for a given
    seed on every backend and worker count.
    """
    from repro.inference.scheduling import run_components
    from repro.parallel.pool import ComponentTask

    partition_sets = [set(partition) for partition in partitions]
    assignment: Dict[int, bool] = {atom_id: False for atom_id in full_mrf.atom_ids}
    if initial_assignment:
        for atom_id, value in initial_assignment.items():
            if atom_id in assignment:
                assignment[atom_id] = bool(value)

    seidel = GaussSeidelSearch(options, rng, rounds=rounds, clock=clock)
    conditioned: List[MRF] = [
        conditioned_mrf(full_mrf, atom_set, assignment)
        for atom_set in partition_sets
    ]
    flips_per_part = max(options.max_flips // max(len(partition_sets), 1), 1)
    active = [index for index, mrf in enumerate(conditioned) if mrf.clause_count > 0]
    first_pass_flips = 0
    if active:
        part_options = WalkSATOptions(
            max_flips=flips_per_part,
            max_tries=1,
            noise=options.noise,
            target_cost=0.0,
            random_restarts=False,
            flip_cost_event=options.flip_cost_event,
            trace_label="partition-pass",
            kernel_backend=options.kernel_backend,
        )
        tasks = []
        for index in active:
            local_initial = {
                atom_id: assignment[atom_id]
                for atom_id in conditioned[index].atom_ids
                if atom_id in assignment
            }
            tasks.append(
                ComponentTask(
                    index=len(tasks),
                    kind="walksat",
                    seed=rng.spawn(500_000 + index + 1).seed,
                    walksat=part_options,
                    initial_assignment=local_initial,
                )
            )
        # The conditioned MRFs are fresh objects each call, so a lent pool
        # can only be used when the caller packed it from exactly them
        # (run_component_tasks verifies identity and otherwise raises);
        # an ephemeral processes pool is torn down in the scheduler's
        # ``finally`` even when a partition task raises.
        outcome = run_components(
            [conditioned[index] for index in active],
            tasks,
            parallel_backend=parallel_backend,
            workers=workers,
            pool=pool,
            dispatch=dispatch,
        )
        for index, result in zip(active, outcome.results):
            first_pass_flips += result.flips
            atom_set = partition_sets[index]
            for atom_id, value in result.best_assignment.items():
                if atom_id in atom_set:
                    assignment[atom_id] = value

    refined = seidel.run(full_mrf, partitions, initial_assignment=assignment)
    return GaussSeidelResult(
        best_assignment=refined.best_assignment,
        best_cost=refined.best_cost,
        rounds=refined.rounds,
        flips=refined.flips + first_pass_flips,
        trace=refined.trace,
        cut_clause_count=refined.cut_clause_count,
    )
