"""Command-line interface.

Three subcommands mirror how the original Tuffy binary was used:

``repro-tuffy infer -i prog.mln -e evidence.db``
    Run MAP (or, with ``--marginal``, MC-SAT marginal) inference on a
    program and evidence file written in the Alchemy-style syntax, printing
    the inferred atoms (or marginal probabilities).

``repro-tuffy dataset RC``
    Generate one of the built-in benchmark workloads (LP, IE, RC, ER) and
    run inference on it, printing the run summary.

``repro-tuffy stats -i prog.mln -e evidence.db``
    Print the Table-1 style statistics of a program without running
    inference.

The CLI is a thin shell around :class:`repro.core.TuffyEngine`; everything
it does is available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines import AlchemyEngine
from repro.core import InferenceConfig, MLNProgram, TuffyEngine
from repro.datasets import DATASET_NAMES, DatasetScale, load_dataset
from repro.obs import write_chrome_trace, write_metrics
from repro.utils.timer import Stopwatch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tuffy",
        description="MAP and marginal inference in Markov Logic Networks (Tuffy reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    infer = subparsers.add_parser("infer", help="run inference on a program/evidence file pair")
    _add_program_arguments(infer)
    _add_inference_arguments(infer)
    infer.add_argument(
        "--predicate",
        default=None,
        help="only print atoms of this predicate (default: all query predicates)",
    )

    dataset = subparsers.add_parser("dataset", help="run inference on a built-in benchmark workload")
    dataset.add_argument("name", choices=sorted(DATASET_NAMES), help="workload name")
    dataset.add_argument("--scale", type=float, default=1.0, help="generator scale factor")
    _add_inference_arguments(dataset)
    dataset.add_argument(
        "--baseline",
        action="store_true",
        help="also run the Alchemy-style baseline and print the comparison",
    )

    stats = subparsers.add_parser("stats", help="print dataset statistics of a program")
    _add_program_arguments(stats)
    return parser


def _add_program_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-i", "--program", required=True, help="path to the .mln program file")
    parser.add_argument("-e", "--evidence", default=None, help="path to the .db evidence file")


def _add_inference_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--execution-backend",
        choices=("auto", "row", "columnar"),
        default="auto",
        help="relational engine execution model for grounding queries "
        "(auto picks columnar for large tables when numpy is available)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("auto", "flat", "vectorized"),
        default="auto",
        help="search-kernel implementation for MAP search and MC-SAT sampling "
        "(auto picks the vectorized kernel for large MRFs when numpy is "
        "available; results are bit-identical across backends)",
    )
    parser.add_argument("--max-flips", type=int, default=100_000, help="total WalkSAT flip budget")
    parser.add_argument("--workers", type=int, default=1, help="parallel component searches")
    parser.add_argument(
        "--parallel-backend",
        choices=("auto", "serial", "threads", "processes"),
        default="auto",
        help="how per-component searches run (auto engages the shared-memory "
        "multiprocess pool when workers > 1 and the MRF has several "
        "components; results are bit-identical across backends)",
    )
    parser.add_argument(
        "--parallel-dispatch",
        choices=("steal", "wave"),
        default="steal",
        help="dispatch loop for per-component searches (steal: work-stealing "
        "cursor, workers pull the next largest-first component as they "
        "finish; wave: legacy barrier scheduler kept as a benchmark "
        "baseline; results are bit-identical across both)",
    )
    parser.add_argument(
        "--no-partitioning",
        action="store_true",
        help="disable component-aware search (the paper's Tuffy-p mode)",
    )
    parser.add_argument(
        "--memory-budget-kb",
        type=int,
        default=None,
        help="memory budget in KB; components larger than this are split (Algorithm 3)",
    )
    parser.add_argument(
        "--marginal",
        action="store_true",
        help="run MC-SAT marginal inference instead of MAP",
    )
    parser.add_argument("--mcsat-samples", type=int, default=100, help="MC-SAT sample count")
    parser.add_argument(
        "--session-requests",
        type=int,
        default=1,
        metavar="N",
        help="repeat the inference request N times on one warm engine "
        "session (grounding, MRF, components and the worker pool are "
        "reused; every request uses the same seed, so all N results are "
        "bit-identical) and print per-request timings plus requests/sec",
    )
    parser.add_argument(
        "--max-inflight-requests",
        type=int,
        default=1,
        metavar="N",
        help="session admission width: how many submitted requests may be "
        "in flight at once (every result is bit-identical whether the "
        "request runs alone or interleaved)",
    )
    parser.add_argument(
        "--session-concurrent",
        type=int,
        default=1,
        metavar="N",
        help="submit the --session-requests requests through the session's "
        "admission queue with N in flight at a time (implies "
        "--max-inflight-requests N) and print a metrics summary table "
        "instead of per-request timings",
    )
    parser.add_argument(
        "--tracing",
        choices=("auto", "on", "off"),
        default="auto",
        help="span tracing mode (auto records iff --trace-out is given; "
        "tracing is non-perturbing — results are bit-identical on or off)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the recorded span tree as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the session metrics registry (JSON when PATH ends in "
        ".json, text otherwise)",
    )


def _config_from_arguments(arguments: argparse.Namespace) -> InferenceConfig:
    return InferenceConfig(
        seed=arguments.seed,
        execution_backend=arguments.execution_backend,
        kernel_backend=arguments.kernel_backend,
        max_flips=arguments.max_flips,
        workers=arguments.workers,
        parallel_backend=arguments.parallel_backend,
        parallel_dispatch=arguments.parallel_dispatch,
        use_partitioning=not arguments.no_partitioning,
        memory_budget_bytes=(
            arguments.memory_budget_kb * 1024 if arguments.memory_budget_kb else None
        ),
        mcsat_samples=arguments.mcsat_samples,
        max_inflight_requests=max(
            getattr(arguments, "max_inflight_requests", 1),
            getattr(arguments, "session_concurrent", 1),
            1,
        ),
        tracing=getattr(arguments, "tracing", "auto"),
        trace_out=getattr(arguments, "trace_out", None),
        metrics_out=getattr(arguments, "metrics_out", None),
    )


def _load_program(arguments: argparse.Namespace) -> MLNProgram:
    with open(arguments.program, encoding="utf-8") as handle:
        program_text = handle.read()
    evidence_text = ""
    if arguments.evidence:
        with open(arguments.evidence, encoding="utf-8") as handle:
            evidence_text = handle.read()
    return MLNProgram.from_text(program_text, evidence_text)


def _print_summary(result, stream) -> None:
    for key, value in result.summary().items():
        print(f"{key:>20}: {value}", file=stream)


def _run_inference(program: MLNProgram, arguments: argparse.Namespace, stream) -> int:
    requests = max(getattr(arguments, "session_requests", 1), 1)
    concurrent = max(getattr(arguments, "session_concurrent", 1), 1)
    with TuffyEngine(program, _config_from_arguments(arguments)) as engine:
        request_seconds = []
        batch_seconds = None
        if concurrent > 1:
            # Admit every request through the session's queue with
            # ``concurrent`` in flight; all results are bit-identical (same
            # seed), so printing the last one is printing all of them.
            watch = Stopwatch()
            with watch.measure():
                submit = engine.submit_marginal if arguments.marginal else engine.submit_map
                futures = [submit() for _request in range(requests)]
                result = [future.result() for future in futures][-1]
            batch_seconds = watch.total
        else:
            for _request in range(requests):
                watch = Stopwatch()
                with watch.measure():
                    if arguments.marginal:
                        result = engine.run_marginal()
                    else:
                        result = engine.run_map()
                request_seconds.append(watch.total)
        if arguments.marginal:
            print("# marginal probabilities (P(atom) >= 0.01)", file=stream)
            atoms = engine.grounding_result.atoms
            for atom_id, probability in sorted(result.marginals.probabilities.items()):
                if probability >= 0.01:
                    print(f"{probability:.3f}\t{atoms.record(atom_id).atom}", file=stream)
        else:
            predicate = getattr(arguments, "predicate", None)
            print("# atoms inferred true", file=stream)
            for atom in result.true_atoms(predicate):
                print(atom, file=stream)
        print("#", file=stream)
        _print_summary(result, stream)
        if batch_seconds is not None:
            _print_concurrent_summary(
                engine, requests, concurrent, batch_seconds, stream
            )
        elif requests > 1:
            _print_session_summary(engine, request_seconds, stream)
        trace_out = getattr(arguments, "trace_out", None)
        if trace_out:
            write_chrome_trace(engine.tracer, trace_out)
            print(f"# trace written to {trace_out}", file=stream)
        metrics_out = getattr(arguments, "metrics_out", None)
        if metrics_out:
            write_metrics(engine.metrics_snapshot(), metrics_out)
            print(f"# metrics written to {metrics_out}", file=stream)
    return 0


def _print_session_summary(engine: TuffyEngine, request_seconds, stream) -> None:
    """Per-request timings of a ``--session-requests`` repeat run."""
    print("# session", file=stream)
    for index, seconds in enumerate(request_seconds):
        label = "cold" if index == 0 else "warm"
        print(f"{f'request {index} ({label})':>20}: {seconds:.4f}s", file=stream)
    warm = request_seconds[1:]
    if warm and sum(warm) > 0:
        print(f"{'warm requests/sec':>20}: {len(warm) / sum(warm):.2f}", file=stream)
    stats = engine.stats
    print(f"{'ground runs':>20}: {stats.ground_runs}", file=stream)
    print(f"{'pool launches':>20}: {stats.pool_launches}", file=stream)


def _print_concurrent_summary(
    engine: TuffyEngine, requests: int, concurrent: int, batch_seconds, stream
) -> None:
    """Metrics-registry summary of a ``--session-concurrent`` batch run.

    Aggregate throughput first, then the registry's shipping/steal
    counters, then one table row per finished request (phase seconds,
    result-shipping split, steals) from the session's request log.
    """
    print("# session (concurrent)", file=stream)
    print(f"{'requests':>20}: {requests}", file=stream)
    print(f"{'in-flight':>20}: {concurrent}", file=stream)
    print(f"{'batch wall':>20}: {batch_seconds:.4f}s", file=stream)
    if batch_seconds > 0:
        print(
            f"{'aggregate req/sec':>20}: {requests / batch_seconds:.2f}", file=stream
        )
    metrics = engine.metrics_snapshot()
    print(f"{'ground runs':>20}: {metrics.counter('session.ground_runs'):g}", file=stream)
    print(f"{'pool launches':>20}: {engine.stats.pool_launches}", file=stream)
    print(
        f"{'result shipping':>20}: "
        f"shm={metrics.counter('pool.shm_shipped'):g} "
        f"pickled={metrics.counter('pool.pickle_shipped'):g} "
        f"shm_bytes={metrics.counter('pool.shm_bytes'):g}",
        file=stream,
    )
    print(f"{'steals':>20}: {metrics.counter('scheduler.steals'):g}", file=stream)
    log = engine.request_log()
    if log:
        print("# per-request", file=stream)
        print(
            f"{'req':>4} {'kind':>8} {'cost':>12} {'ground':>9} {'load':>9} "
            f"{'search':>9} {'steals':>6} {'ship(shm/pkl)':>13}",
            file=stream,
        )
        for entry in log:
            phases = entry["phase_seconds"]
            ship = f"{entry['shm_shipped']}/{entry['pickle_shipped']}"
            print(
                f"{entry['request_id']:>4} {entry['kind']:>8} "
                f"{entry['cost']:>12.2f} "
                f"{phases.get('grounding', 0.0):>9.4f} "
                f"{phases.get('loading', 0.0):>9.4f} "
                f"{phases.get('search', 0.0):>9.4f} "
                f"{entry['steals']:>6} {ship:>13}",
                file=stream,
            )


def _command_infer(arguments: argparse.Namespace, stream) -> int:
    return _run_inference(_load_program(arguments), arguments, stream)


def _command_dataset(arguments: argparse.Namespace, stream) -> int:
    dataset = load_dataset(arguments.name, DatasetScale(factor=arguments.scale, seed=arguments.seed))
    print(f"# workload: {dataset.name} — {dataset.description}", file=stream)
    status = _run_inference(dataset.program, arguments, stream)
    if getattr(arguments, "baseline", False):
        baseline_dataset = load_dataset(
            arguments.name, DatasetScale(factor=arguments.scale, seed=arguments.seed)
        )
        baseline = AlchemyEngine(baseline_dataset.program, _config_from_arguments(arguments))
        result = baseline.run_map()
        print("# Alchemy-style baseline", file=stream)
        _print_summary(result, stream)
    return status


def _command_stats(arguments: argparse.Namespace, stream) -> int:
    program = _load_program(arguments)
    for key, value in program.statistics().as_dict().items():
        print(f"{key:>20}: {value}", file=stream)
    return 0


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit status."""
    stream = stream or sys.stdout
    arguments = build_parser().parse_args(argv)
    handlers = {
        "infer": _command_infer,
        "dataset": _command_dataset,
        "stats": _command_stats,
    }
    return handlers[arguments.command](arguments, stream)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
