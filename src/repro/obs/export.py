"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and metrics dumps.

The Chrome trace format is the `trace-event` JSON flavour understood by
``chrome://tracing`` and https://ui.perfetto.dev: a ``traceEvents`` array of
complete events (``"ph": "X"``) with microsecond timestamps.  Each request
is mapped to its own ``tid`` row so a concurrent session renders as
parallel per-request lanes under one process.

``validate_chrome_trace`` is a stdlib-only structural check used by the
``scripts/check.sh`` obs stage; it returns a list of problems (empty means
valid) rather than raising, so callers can report all of them at once.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer, Span


def chrome_trace_events(tracer: RecordingTracer) -> Dict[str, object]:
    """Render a tracer's spans as a Chrome trace-event JSON payload.

    Timestamps are microseconds relative to the earliest span start, so
    the trace opens at t=0 in viewers.  ``tid`` is the resolved request id
    (0 for spans outside any request), giving each request its own lane.
    """
    spans = tracer.spans()
    if spans:
        origin = min(span.wall_start for span in spans)
    else:
        origin = 0.0
    events: List[Dict[str, object]] = []
    for span in spans:
        request_id = tracer.request_id_of(span)
        wall_end = span.wall_end if span.wall_end is not None else span.wall_start
        args: Dict[str, object] = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if request_id is not None:
            args["request_id"] = request_id
        args["simulated_start"] = span.simulated_start
        if span.simulated_end is not None:
            args["simulated_end"] = span.simulated_end
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.wall_start - origin) * 1e6,
                "dur": max(0.0, (wall_end - span.wall_start) * 1e6),
                "pid": 0,
                "tid": request_id if request_id is not None else 0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: RecordingTracer, path: str) -> None:
    payload = chrome_trace_events(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(payload: object) -> List[str]:
    """Structurally validate a Chrome trace payload; empty list means valid."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top-level payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name is not a string")
        if event.get("ph") == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: complete event needs non-negative dur")
        timestamp = event.get("ts")
        if not isinstance(timestamp, (int, float)) or timestamp < 0:
            problems.append(f"{where}: ts is not a non-negative number")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args is not an object")
    return problems


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Dump a registry: JSON when the path ends in ``.json``, text otherwise."""
    if str(path).endswith(".json"):
        rendered = registry.render_json()
    else:
        rendered = registry.render_text()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered)
        handle.write("\n")


__all__ = [
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
