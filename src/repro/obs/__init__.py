"""Observability: span tracing, metrics, time/cost series and exporters.

Everything in this package is *non-perturbing* by contract: no RNG draws,
no simulated-clock mutation, no session state — enforced by the
``obs-purity`` analysis rule and the trace-on/trace-off parity suite.
"""

from repro.obs.events import RateMeter, Series, SeriesPoint, merge_series
from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, RecordingTracer, Span

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "RateMeter",
    "RecordingTracer",
    "Series",
    "SeriesPoint",
    "Span",
    "chrome_trace_events",
    "merge_series",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
