"""Time/cost series and rate meters — the event model behind the Figure 3–8
benchmarks.

:class:`Series` is the generalised form of what ``inference/tracing.py``
historically called ``TimeCostTrace``: a monotone-best cost-over-time curve
sampled on the simulated clock.  ``inference.tracing`` now re-exports thin
subclasses of these types for API compatibility; new code should import
from here.

Two recording entry points exist on purpose:

* :meth:`Series.record` — gated, drops non-improving points.  The
  defensive public API.
* :meth:`Series.record_improvement` — ungated.  Hot search loops
  (``walksat.py``, ``reference_kernel.py``, ``rdbms_walksat.py``,
  ``gauss_seidel.py``) already test ``cost < best_cost`` before recording,
  so the gate inside :meth:`record` was a duplicate comparison per
  improvement; those paths call this instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Type


@dataclass
class SeriesPoint:
    """One sample: simulated time, best cost so far, cumulative flips."""

    time: float
    cost: float
    flips: int = 0


@dataclass
class Series:
    """A monotone-best cost-over-time curve on the simulated clock.

    ``label`` names the system being traced (e.g. ``"tuffy"``,
    ``"alchemy"``) so benchmark harnesses can overlay curves.
    """

    label: str = ""
    points: List[SeriesPoint] = field(default_factory=list)
    grounding_seconds: float = 0.0

    def record(self, time: float, cost: float, flips: int = 0) -> None:
        """Record a sample if it improves on (or starts) the series."""
        if not self.points or cost < self.points[-1].cost:
            self.points.append(SeriesPoint(time, cost, flips))

    def record_improvement(self, time: float, cost: float, flips: int = 0) -> None:
        """Record a sample the caller has already established improves.

        Skips the improvement gate of :meth:`record` — hot loops check
        ``cost < best_cost`` themselves before calling.
        """
        self.points.append(SeriesPoint(time, cost, flips))

    def record_final(self, time: float, cost: float, flips: int = 0) -> None:
        """Record the final observation even when it does not improve."""
        self.points.append(SeriesPoint(time, cost, flips))

    @property
    def best_cost(self) -> float:
        return min((point.cost for point in self.points), default=math.inf)

    @property
    def final_time(self) -> float:
        return self.points[-1].time if self.points else 0.0

    def cost_at(self, time: float) -> float:
        """Best cost achieved at or before the given time (inf before start)."""
        best = math.inf
        for point in self.points:
            if point.time + self.grounding_seconds <= time and point.cost < best:
                best = point.cost
        return best

    def shifted(self, offset: float) -> "Series":
        """A copy with every timestamp shifted (used to add grounding time)."""
        copy = type(self)(self.label, grounding_seconds=self.grounding_seconds)
        copy.points = [
            SeriesPoint(point.time + offset, point.cost, point.flips)
            for point in self.points
        ]
        return copy

    def as_rows(self) -> List[Tuple[float, float]]:
        return [(point.time, point.cost) for point in self.points]


@dataclass
class RateMeter:
    """Counts flips against elapsed time to report flips/second."""

    flips: int = 0
    seconds: float = 0.0

    def record(self, flips: int, seconds: float) -> None:
        self.flips += flips
        self.seconds += seconds

    @property
    def flips_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flips / self.seconds


def merge_series(
    traces: Sequence[Series],
    label: str = "",
    factory: Type[Series] = Series,
) -> Series:
    """Merge per-component series into one global best-cost curve.

    Component searches run independently; at any time the global best cost
    is the sum of each component's best cost so far.  The merged series
    samples the union of all component timestamps and is undefined
    (omitted) until every component has reported at least one point.
    """
    merged = factory(label)
    if not traces:
        return merged
    timestamps = sorted({point.time for trace in traces for point in trace.points})
    for timestamp in timestamps:
        total = 0.0
        defined = True
        for trace in traces:
            best = math.inf
            for point in trace.points:
                if point.time <= timestamp and point.cost < best:
                    best = point.cost
            if math.isinf(best):
                defined = False
                break
            total += best
        if defined:
            merged.record_final(timestamp, total)
    return merged


__all__ = ["RateMeter", "Series", "SeriesPoint", "merge_series"]
