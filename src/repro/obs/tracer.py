"""Span tracing: nested, cross-process-stitchable operation records.

A :class:`Span` is one named interval on two timelines at once — the
monotonic wall clock (:func:`repro.utils.clock.wall_now`, a system-wide
``perf_counter`` so worker-process timestamps stitch onto the parent's
without translation) and, when the tracer is given a read-only simulated
clock source, the deterministic simulated clock.  Spans nest: each
recording thread keeps an ambient stack, so ``with tracer.span("setup")``
inside ``with tracer.span("request")`` parents automatically, and
post-hoc spans (:meth:`RecordingTracer.record_span`) default their parent
to the ambient span of the recording thread.  That is how worker-side
task records — shipped back through the pool's completion-token queue —
are stitched under the request that dispatched them: the scheduler
replays them *in component order* from the request's own thread.

Two implementations share the interface:

* :class:`NullTracer` — the default.  Every method is a no-op returning
  shared singletons, so traced call sites cost one attribute lookup and
  one method call when tracing is off.
* :class:`RecordingTracer` — thread-safe append-only span log.

The purity contract (enforced by the ``obs-purity`` analysis rule and the
trace-on/trace-off parity suite): tracers never draw randomness, never
advance or charge any clock — the simulated source is *read* via a
caller-supplied zero-argument callable — and never touch session state,
so tracing on vs off cannot perturb a single result bit.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.utils.clock import wall_now


class Span:
    """One recorded operation: a named interval with attributes.

    ``wall_start`` / ``wall_end`` are absolute monotonic timestamps;
    ``simulated_start`` / ``simulated_end`` are simulated-clock readings
    (zero when the tracer has no simulated source).  ``request_id`` is
    set on request root spans; descendants resolve theirs through the
    parent chain (:meth:`RecordingTracer.request_id_of`).
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "request_id",
        "wall_start",
        "wall_end",
        "simulated_start",
        "simulated_end",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int] = None,
        request_id: Optional[int] = None,
        wall_start: float = 0.0,
        wall_end: Optional[float] = None,
        simulated_start: float = 0.0,
        simulated_end: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id
        self.wall_start = wall_start
        self.wall_end = wall_end
        self.simulated_start = simulated_start
        self.simulated_end = simulated_end
        self.attributes: Dict[str, object] = attributes if attributes is not None else {}

    @property
    def wall_duration(self) -> float:
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def simulated_duration(self) -> float:
        if self.simulated_end is None:
            return 0.0
        return self.simulated_end - self.simulated_start

    def annotate(self, **attributes: object) -> "Span":
        """Attach attributes after the span was opened (e.g. the request
        id, which is only known once setup assigns one)."""
        for key, value in attributes.items():
            if key == "request_id":
                self.request_id = int(value)  # type: ignore[arg-type]
            else:
                self.attributes[key] = value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"request={self.request_id}, wall={self.wall_duration:.6f}s)"
        )


class _NullSpan:
    """The shared do-nothing span: context manager and span in one."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def annotate(self, **attributes: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing.

    Every call site can be written unconditionally — ``with
    tracer.span(...)`` — and pays one method call returning a shared
    no-op singleton.  ``now()`` returns 0.0 so disabled call sites never
    read the wall clock at all.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        wall_start: float,
        wall_end: float,
        parent: object = None,
        request_id: Optional[int] = None,
        **attributes: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def request_spans(self, request_id: int) -> List[Span]:
        return []


class _SpanContext:
    """Context manager opening one recorded span on the ambient stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RecordingTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        span = self._span
        span.wall_end = wall_now()
        span.simulated_end = self._tracer._simulated()
        if exc_type is not None:
            span.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._tracer._pop(span)
        return False


class RecordingTracer:
    """Thread-safe span recorder with ambient (per-thread) nesting.

    ``simulated_now`` is an optional zero-argument callable *reading* a
    simulated clock (e.g. ``database.clock.now``); the tracer never
    advances or charges it.  Spans are kept in an append-only list in
    recording order; tree structure lives in ``parent_id`` links.
    """

    enabled = True

    def __init__(self, simulated_now: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1
        self._local = threading.local()
        self._simulated_now = simulated_now
        self.origin = wall_now()

    # -- clocks --------------------------------------------------------

    def now(self) -> float:
        """The monotonic wall clock (absolute, cross-process-consistent)."""
        return wall_now()

    def _simulated(self) -> float:
        if self._simulated_now is None:
            return 0.0
        return self._simulated_now()

    # -- ambient stack -------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording -----------------------------------------------------

    def _allocate(
        self,
        name: str,
        parent_id: Optional[int],
        request_id: Optional[int],
        wall_start: float,
        wall_end: Optional[float],
        simulated_start: float,
        simulated_end: Optional[float],
        attributes: Dict[str, object],
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                name,
                span_id,
                parent_id=parent_id,
                request_id=request_id,
                wall_start=wall_start,
                wall_end=wall_end,
                simulated_start=simulated_start,
                simulated_end=simulated_end,
                attributes=attributes,
            )
            self._by_id[span_id] = span
            self._spans.append(span)
        return span

    def span(
        self, name: str, request_id: Optional[int] = None, **attributes: object
    ) -> _SpanContext:
        """Open a nested span: ``with tracer.span("setup") as span: ...``.

        The parent is the calling thread's ambient span; the end
        timestamps are captured when the ``with`` block exits.
        """
        parent = self.current_span()
        span = self._allocate(
            name,
            parent_id=parent.span_id if parent is not None else None,
            request_id=request_id,
            wall_start=wall_now(),
            wall_end=None,
            simulated_start=self._simulated(),
            simulated_end=None,
            attributes=dict(attributes),
        )
        return _SpanContext(self, span)

    def record_span(
        self,
        name: str,
        wall_start: float,
        wall_end: float,
        parent: object = None,
        request_id: Optional[int] = None,
        **attributes: object,
    ) -> Span:
        """Record a completed span post-hoc (worker stitching).

        ``parent`` is a :class:`Span`, a span id, or ``None`` (the
        calling thread's ambient span).  The wall timestamps are the
        caller's — typically captured in a worker process on the shared
        monotonic timeline.
        """
        if parent is None:
            ambient = self.current_span()
            parent_id = ambient.span_id if ambient is not None else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = int(parent)  # type: ignore[arg-type]
        simulated = self._simulated()
        return self._allocate(
            name,
            parent_id=parent_id,
            request_id=request_id,
            wall_start=wall_start,
            wall_end=wall_end,
            simulated_start=simulated,
            simulated_end=simulated,
            attributes=dict(attributes),
        )

    def instant(self, name: str, **attributes: object) -> Span:
        """Record a zero-duration marker at the current instant."""
        timestamp = wall_now()
        return self.record_span(name, timestamp, timestamp, **attributes)

    # -- queries -------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of every recorded span, in recording order."""
        with self._lock:
            return list(self._spans)

    def parent_of(self, span: Span) -> Optional[Span]:
        if span.parent_id is None:
            return None
        with self._lock:
            return self._by_id.get(span.parent_id)

    def request_id_of(self, span: Span) -> Optional[int]:
        """The request a span belongs to: nearest ancestor's request id."""
        seen = set()
        current: Optional[Span] = span
        while current is not None:
            if current.request_id is not None:
                return current.request_id
            if current.parent_id is None or current.parent_id in seen:
                return None
            seen.add(current.parent_id)
            current = self.parent_of(current)
        return None

    def request_spans(self, request_id: int) -> List[Span]:
        """Every span attributed to one request, in recording order."""
        return [
            span for span in self.spans() if self.request_id_of(span) == request_id
        ]

    def request_ids(self) -> List[int]:
        """The request ids seen on root spans, ascending."""
        ids = {
            span.request_id for span in self.spans() if span.request_id is not None
        }
        return sorted(ids)


__all__ = ["NullTracer", "RecordingTracer", "Span"]
