"""The metrics registry: counters, gauges and histograms under dotted names.

One :class:`MetricsRegistry` per session absorbs the counters that used to
live scattered across layers (``WorkerPool.shm_shipped``, steal counts in
``ScheduledOutcome``, replay-cache hits in grounding reports, IO charges in
``IOStatistics``) under stable dotted names — ``pool.shm_shipped``,
``scheduler.steals``, ``grounding.replay_hits``, ``io.page_reads`` — so one
dump answers "what happened" without spelunking five objects.

Method names are deliberately *not* container-mutator names
(``increment`` / ``observe`` / ``set_gauge``): request-scoped session code
calls them directly and the ``req-state-isolation`` analysis rule flags
mutator-style attribute calls on session state.

Histograms keep bounded aggregates (count/total/min/max), never raw
samples, so a registry's footprint is independent of request volume.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional


class MetricsRegistry:
    """Thread-safe named counters, gauges and histogram aggregates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- writes --------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into the histogram ``name``."""
        value = float(value)
        with self._lock:
            aggregate = self._histograms.get(name)
            if aggregate is None:
                self._histograms[name] = [1.0, value, value, value]
            else:
                aggregate[0] += 1.0
                aggregate[1] += value
                if value < aggregate[2]:
                    aggregate[2] = value
                if value > aggregate[3]:
                    aggregate[3] = value

    # -- reads ---------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            aggregate = self._histograms.get(name)
            if aggregate is None:
                return None
            count, total, low, high = aggregate
        return {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """A nested snapshot: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            names = list(self._histograms)
        histograms = {name: self.histogram(name) for name in names}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_text(self) -> str:
        """Sorted human-readable lines, one metric per line."""
        snapshot = self.as_dict()
        lines: List[str] = []
        for name in sorted(snapshot["counters"]):
            lines.append(f"counter {name} {snapshot['counters'][name]:g}")
        for name in sorted(snapshot["gauges"]):
            lines.append(f"gauge {name} {snapshot['gauges'][name]:g}")
        for name in sorted(snapshot["histograms"]):
            h = snapshot["histograms"][name]
            lines.append(
                f"histogram {name} count={h['count']:g} mean={h['mean']:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


__all__ = ["MetricsRegistry"]
