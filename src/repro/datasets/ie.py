"""IE — Information Extraction (Citeseer-like citation segmentation).

The task: label the token positions of each citation string with the field
they belong to (author / title / venue / year).  The rules are a compact
version of the segmentation MLNs used on Citeseer:

* R1 (weight 0.8): a token that looks like a seed word for a field makes its
  position take that field;
* R2 (weight 1.0): adjacent positions tend to share a field;
* R3 (weight 4.0): a position has at most one field.

Each citation is independent of every other citation, so the ground MRF
consists of thousands of tiny components (2-atom and 3-atom cliques on the
real data) — the regime in which the paper's Theorem 3.1 analysis gives the
2^200 hitting-time gap and batch loading matters (Table 7).

Positions are modelled per-citation (``C12_3`` = third token of citation 12)
so the per-citation independence is visible to the component detector, and
the label domain is *restricted per position* by registering only the query
atoms of each citation (mirroring KBMC: atoms irrelevant to a citation never
enter the MRF).
"""

from __future__ import annotations

from repro.core.program import MLNProgram
from repro.datasets.base import Dataset, DatasetScale
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

FIELDS = ["Author", "Title", "Venue", "Year"]

SEED_WORDS = {
    "Author": ["smith", "jones", "lee"],
    "Title": ["learning", "inference", "networks"],
    "Venue": ["proceedings", "journal", "conference"],
    "Year": ["1999", "2005", "2010"],
}

IE_RULES = """
0.8 token(p, w), seedword(w, l) => field(p, l)
1.0 next(p1, p2), field(p1, l) => field(p2, l)
4.0 field(p, l1), field(p, l2) => l1 = l2
"""


def generate_ie(scale: DatasetScale | None = None) -> Dataset:
    """Generate an IE-like workload with one small component per citation."""
    scale = scale or DatasetScale()
    rng = RandomSource(scale.seed)

    n_citations = scale.scaled(60)
    min_tokens, max_tokens = 2, 4

    program = MLNProgram("IE")
    program.declare_predicate(Predicate("token", ("position", "word"), closed_world=True))
    program.declare_predicate(Predicate("next", ("position", "position"), closed_world=True))
    program.declare_predicate(Predicate("seedword", ("word", "label"), closed_world=True))
    program.declare_predicate(Predicate("field", ("position", "label"), closed_world=False))
    for line in IE_RULES.strip().splitlines():
        program.add_rule_text(line)
    program.add_constants("label", FIELDS)

    for label, words in SEED_WORDS.items():
        for word in words:
            program.add_evidence("seedword", (word, label))

    positions = 0
    for citation in range(1, n_citations + 1):
        token_count = rng.randint(min_tokens, max_tokens)
        citation_positions = [f"C{citation}_{index}" for index in range(1, token_count + 1)]
        positions += token_count
        program.add_constants("position", citation_positions)
        for position in citation_positions:
            field = rng.pick(FIELDS)
            if rng.random() < 0.6:
                word = rng.pick(SEED_WORDS[field])
            else:
                word = f"w{rng.randint(1, 50)}"
            program.add_evidence("token", (position, word))
            # Restrict the query atoms of this position to the label domain
            # explicitly so every citation stays its own component.
            for label in FIELDS:
                program.add_query_atom("field", (position, label))
        for first, second in zip(citation_positions, citation_positions[1:]):
            program.add_evidence("next", (first, second))

    return Dataset(
        name="IE",
        program=program,
        description=(
            "Citation segmentation: label token positions with fields; one "
            "independent component per citation."
        ),
        expected_components=n_citations,
        metadata={
            "citations": n_citations,
            "positions": positions,
            "fields": len(FIELDS),
        },
    )
