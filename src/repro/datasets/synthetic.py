"""Random MLN programs for property-based testing.

The generated programs are intentionally tiny (a handful of constants and
clauses) so that exhaustive checks — bottom-up vs top-down grounding
equivalence, cost decomposition over components, optimizer plan equivalence
— stay fast inside hypothesis.
"""

from __future__ import annotations

from typing import List

from repro.core.program import MLNProgram
from repro.logic.clauses import WeightedClause
from repro.logic.literals import Literal
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable
from repro.utils.rng import RandomSource


def random_program(
    seed: int = 0,
    n_predicates: int = 3,
    domain_size: int = 4,
    n_clauses: int = 4,
    max_literals: int = 3,
    evidence_fraction: float = 0.3,
    allow_negative_weights: bool = True,
) -> MLNProgram:
    """Generate a random, small, open-world MLN program.

    All predicates are open-world (query predicates) over a single type
    ``obj``, so the generated programs exercise the grounders without the
    closed-world restrictions; evidence is a random subset of atoms with
    random truth values.
    """
    rng = RandomSource(seed)
    program = MLNProgram(f"synthetic-{seed}")
    constants = [f"C{i}" for i in range(domain_size)]
    program.add_constants("obj", constants)

    predicates: List[Predicate] = []
    for index in range(n_predicates):
        arity = rng.randint(1, 2)
        predicate = Predicate(f"p{index}", tuple(["obj"] * arity), closed_world=False)
        program.declare_predicate(predicate)
        predicates.append(predicate)

    variables = [Variable(name) for name in ("x", "y", "z")]
    for clause_index in range(n_clauses):
        literal_count = rng.randint(1, max_literals)
        literals = []
        for _ in range(literal_count):
            predicate = rng.pick(predicates)
            arguments = []
            for _position in range(predicate.arity):
                if rng.random() < 0.75:
                    arguments.append(rng.pick(variables[: rng.randint(1, len(variables))]))
                else:
                    arguments.append(Constant(rng.pick(constants)))
            literals.append(Literal(predicate, tuple(arguments), positive=rng.coin(0.6)))
        weight = round(rng.random() * 4 + 0.5, 2)
        if allow_negative_weights and rng.random() < 0.2:
            weight = -weight
        program.add_clause(
            WeightedClause(tuple(literals), weight, name=f"S{clause_index}")
        )

    # Random evidence over a subset of all possible atoms.
    for predicate in predicates:
        atoms = _all_atoms(predicate, constants)
        for arguments in atoms:
            if rng.random() < evidence_fraction:
                program.add_evidence(predicate.name, arguments, truth=rng.coin(0.5))
    return program


def _all_atoms(predicate: Predicate, constants: List[str]) -> List[tuple]:
    if predicate.arity == 1:
        return [(constant,) for constant in constants]
    return [(first, second) for first in constants for second in constants]
