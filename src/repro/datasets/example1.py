"""Example 1 of the paper (Section 3.3): N identical two-atom components.

Each component ``i`` has atoms ``X_i`` and ``Y_i`` and three weighted ground
clauses::

    (X_i, 1)   (Y_i, 1)   (X_i v Y_i, -1)

The unique optimal state of a component is ``X_i = Y_i = True`` with cost 1,
so the optimal cost of the whole MRF is ``N``.  The paper shows that
WalkSAT run on the whole MRF needs an expected ``Ω(2^N)`` steps to reach the
optimum, while component-aware WalkSAT needs ``O(N)`` — the motivating case
for Theorem 3.1 and the workload behind Figure 8.
"""

from __future__ import annotations

from typing import Tuple

from repro.grounding.clause_table import GroundClauseStore
from repro.mrf.graph import MRF


def example1_store(n_components: int) -> GroundClauseStore:
    """The ground clauses of Example 1 with ``n_components`` components.

    Atom ids: component ``i`` (0-based) owns atoms ``2i+1`` (X) and ``2i+2`` (Y).
    """
    if n_components <= 0:
        raise ValueError("n_components must be positive")
    store = GroundClauseStore(merge_duplicates=False)
    for index in range(n_components):
        x_atom = 2 * index + 1
        y_atom = 2 * index + 2
        store.add((x_atom,), 1.0, source="example1-x")
        store.add((y_atom,), 1.0, source="example1-y")
        store.add((x_atom, y_atom), -1.0, source="example1-xy")
    return store


def example1_mrf(n_components: int) -> MRF:
    """Example 1 as an MRF ready for search."""
    return MRF.from_store(example1_store(n_components))


def example1_optimal_cost(n_components: int) -> float:
    """The optimal (minimum) cost: one unavoidable violation per component."""
    return float(n_components)


def example1_atom_ids(component_index: int) -> Tuple[int, int]:
    """The (X, Y) atom ids of a 0-based component index."""
    return 2 * component_index + 1, 2 * component_index + 2
