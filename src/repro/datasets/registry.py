"""Dataset lookup by name (used by benchmarks and examples)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.datasets.base import Dataset, DatasetScale
from repro.datasets.er import generate_er
from repro.datasets.ie import generate_ie
from repro.datasets.lp import generate_lp
from repro.datasets.rc import generate_rc

_GENERATORS: Dict[str, Callable[[Optional[DatasetScale]], Dataset]] = {
    "LP": generate_lp,
    "IE": generate_ie,
    "RC": generate_rc,
    "ER": generate_er,
}

DATASET_NAMES = tuple(_GENERATORS)


def load_dataset(name: str, scale: Optional[DatasetScale] = None) -> Dataset:
    """Generate one of the four paper workloads by name (LP, IE, RC, ER)."""
    key = name.upper()
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_GENERATORS)}")
    return _GENERATORS[key](scale)
