"""ER — Entity Resolution (Cora-like citation deduplication).

The task: decide which citation records refer to the same underlying paper,
given pairwise word-similarity evidence.  The rules:

* R1 (weight 4.0): highly similar records are the same;
* R2 (weight 2.0): moderately similar records are probably the same;
* R3 (weight -0.5): a prior against merging;
* R4 (weight 6.0): sameBib is transitive.

The transitivity rule makes the ground MRF a single, very dense component
over all record pairs (on the real Cora data 2M clauses), which is the
regime where further MRF partitioning lowers memory but cuts many clauses
and can slow convergence (Figure 6, ER panel).
"""

from __future__ import annotations

from typing import List

from repro.core.program import MLNProgram
from repro.datasets.base import Dataset, DatasetScale
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

ER_RULES = """
4.0 simHigh(b1, b2) => sameBib(b1, b2)
2.0 simMed(b1, b2) => sameBib(b1, b2)
-0.5 sameBib(b1, b2)
6.0 sameBib(b1, b2), sameBib(b2, b3) => sameBib(b1, b3)
"""


def generate_er(scale: DatasetScale | None = None) -> Dataset:
    """Generate an ER-like workload (one dense component over record pairs)."""
    scale = scale or DatasetScale()
    rng = RandomSource(scale.seed)

    n_entities = scale.scaled(8)
    records_per_entity = scale.scaled(3)

    program = MLNProgram("ER")
    program.declare_predicate(Predicate("simHigh", ("bib", "bib"), closed_world=True))
    program.declare_predicate(Predicate("simMed", ("bib", "bib"), closed_world=True))
    program.declare_predicate(Predicate("sameBib", ("bib", "bib"), closed_world=False))
    for line in ER_RULES.strip().splitlines():
        program.add_rule_text(line)

    records: List[str] = []
    entity_of: dict[str, int] = {}
    for entity in range(n_entities):
        for copy in range(records_per_entity):
            record = f"B{entity}_{copy}"
            records.append(record)
            entity_of[record] = entity
    program.add_constants("bib", records)

    # Similarity evidence: same-entity pairs are mostly high-similarity,
    # different-entity pairs occasionally medium-similarity (noise).
    for i, first in enumerate(records):
        for second in records[i + 1 :]:
            same_entity = entity_of[first] == entity_of[second]
            if same_entity and rng.random() < 0.8:
                program.add_evidence("simHigh", (first, second))
            elif same_entity:
                program.add_evidence("simMed", (first, second))
            elif rng.random() < 0.05:
                program.add_evidence("simMed", (first, second))

    return Dataset(
        name="ER",
        program=program,
        description=(
            "Citation record deduplication with transitive sameBib closure; "
            "a single dense MRF component."
        ),
        expected_components=1,
        metadata={
            "entities": n_entities,
            "records": len(records),
        },
    )
