"""Example 2 of the paper (Section 3.4): two subgraphs joined by one edge.

The MRF consists of two equally sized subgraphs ``G1`` and ``G2`` plus a
single clause ``e = (a, b)`` connecting an atom of each.  Because the two
halves are almost independent, a joint WalkSAT pays roughly the *product* of
the per-half hitting times, whereas conditioning on the boundary atom and
solving the halves independently (the Gauss-Seidel scheme) pays only their
sum — the motivation for further MRF partitioning.

Each half is built from Example-1 style atom pairs chained together so its
optimum is unique and non-trivial to reach.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.grounding.clause_table import GroundClauseStore
from repro.mrf.graph import MRF


def example2_store(half_size: int) -> Tuple[GroundClauseStore, List[int], List[int]]:
    """Build the Example 2 clauses.

    ``half_size`` is the number of atom pairs per half.  Returns the store
    and the atom ids of each half (useful as the ideal bisection).
    """
    if half_size <= 0:
        raise ValueError("half_size must be positive")
    store = GroundClauseStore(merge_duplicates=False)
    halves: List[List[int]] = [[], []]
    next_atom = 1
    for half in range(2):
        previous_pair: Tuple[int, int] | None = None
        for _pair in range(half_size):
            x_atom, y_atom = next_atom, next_atom + 1
            next_atom += 2
            halves[half].extend([x_atom, y_atom])
            store.add((x_atom,), 1.0, source=f"g{half + 1}-x")
            store.add((y_atom,), 1.0, source=f"g{half + 1}-y")
            store.add((x_atom, y_atom), -1.0, source=f"g{half + 1}-xy")
            if previous_pair is not None:
                # Chain consecutive pairs so each half is one component.
                store.add((previous_pair[1], x_atom), 0.5, source=f"g{half + 1}-chain")
            previous_pair = (x_atom, y_atom)
    # The single cut edge e = (a, b) between the two halves.
    boundary_a = halves[0][0]
    boundary_b = halves[1][0]
    store.add((boundary_a, boundary_b), 0.5, source="cut-edge")
    return store, halves[0], halves[1]


def example2_mrf(half_size: int) -> Tuple[MRF, List[int], List[int]]:
    """Example 2 as an MRF plus the two natural partition sides."""
    store, side_one, side_two = example2_store(half_size)
    return MRF.from_store(store), side_one, side_two
