"""RC — Relational Classification (the paper's running example, Figure 1).

The task: classify papers by research area given co-authorship, citations
and a partial labelling.  The MLN contains the rules of Figure 1 (minus the
existential hard rule F4, which ranges only over evidence predicates and
therefore produces no query clauses):

* F1 (weight 5): a paper is in at most one category;
* F2 (weight 1): papers by the same author share a category;
* F3 (weight 2): a paper and the papers it cites share a category;
* F5 (weight -1): few papers are about 'Networking'.

The generator produces a citation/co-author graph organised into clusters
with no cross-cluster edges, so the ground MRF fragments into roughly one
component per cluster — the structural property (hundreds of components on
the real Cora data) that makes RC the paper's showcase for partitioning.
"""

from __future__ import annotations

from typing import List

from repro.core.program import MLNProgram
from repro.datasets.base import Dataset, DatasetScale
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

CATEGORIES = ["DB", "AI", "Systems", "Theory", "Networking"]

RC_RULES = """
5 cat(p, c1), cat(p, c2) => c1 = c2
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
2 cat(p1, c), refers(p1, p2) => cat(p2, c)
-1 cat(p, "Networking")
"""


def generate_rc(scale: DatasetScale | None = None) -> Dataset:
    """Generate an RC-like workload."""
    scale = scale or DatasetScale()
    rng = RandomSource(scale.seed)

    n_clusters = scale.scaled(24)
    papers_per_cluster = scale.scaled(5)
    authors_per_cluster = scale.scaled(2)
    labeled_fraction = 0.3
    categories = CATEGORIES

    program = MLNProgram("RC")
    program.declare_predicate(Predicate("wrote", ("author", "paper"), closed_world=True))
    program.declare_predicate(Predicate("refers", ("paper", "paper"), closed_world=True))
    program.declare_predicate(Predicate("cat", ("paper", "category"), closed_world=False))
    for line in RC_RULES.strip().splitlines():
        program.add_rule_text(line)
    program.add_constants("category", categories)

    paper_count = 0
    author_count = 0
    for cluster in range(n_clusters):
        cluster_category = categories[cluster % len(categories)]
        papers: List[str] = []
        for _ in range(papers_per_cluster):
            paper_count += 1
            papers.append(f"P{paper_count}")
        authors: List[str] = []
        for _ in range(authors_per_cluster):
            author_count += 1
            authors.append(f"A{author_count}")
        program.add_constants("paper", papers)
        program.add_constants("author", authors)

        # Co-authorship: every paper gets 1-2 authors from the cluster.
        for paper in papers:
            for author in rng.sample(authors, min(len(authors), rng.randint(1, 2))):
                program.add_evidence("wrote", (author, paper))
        # Citations: a sparse chain plus a few random intra-cluster edges.
        for first, second in zip(papers, papers[1:]):
            program.add_evidence("refers", (first, second))
        extra_citations = max(len(papers) // 3, 1)
        for _ in range(extra_citations):
            source = rng.pick(papers)
            target = rng.pick(papers)
            if source != target:
                program.add_evidence("refers", (source, target))
        # Partial labels: a fraction of papers in each cluster are labelled.
        for paper in papers:
            if rng.random() < labeled_fraction:
                program.add_evidence("cat", (paper, cluster_category))

    return Dataset(
        name="RC",
        program=program,
        description=(
            "Relational classification of papers by area over a clustered "
            "citation / co-author graph (Figure 1 rules)."
        ),
        expected_components=n_clusters,
        metadata={
            "papers": paper_count,
            "authors": author_count,
            "categories": len(categories),
            "clusters": n_clusters,
        },
    )
