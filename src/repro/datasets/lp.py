"""LP — Link Prediction (UW-CSE-like advisor prediction).

The task: given an administrative database of a CS department (who is a
student, who is a professor, who co-authored which publication), predict the
``advisedBy`` relation.  The rules are a compact version of the UW-CSE MLN:

* R1 (weight 1.5): a student who co-authors a publication with a professor
  is likely advised by them;
* R2 (weight -0.5): a prior against advisedBy holding;
* R3 (weight 3.0): a student has at most one adviser;
* R4 (weight 0.5): co-authoring students tend to share an adviser.

Unlike RC and IE, the resulting MRF is one large connected component (rule
R4 ties students together through the co-author graph), which is why the
paper sees no partitioning gain on LP until the component is split further
(Figure 6).
"""

from __future__ import annotations

from typing import List

from repro.core.program import MLNProgram
from repro.datasets.base import Dataset, DatasetScale
from repro.logic.predicates import Predicate
from repro.utils.rng import RandomSource

LP_RULES = """
1.5 publication(t, s), publication(t, p), student(s), professor(p) => advisedBy(s, p)
-0.5 advisedBy(s, p)
3.0 advisedBy(s, p1), advisedBy(s, p2) => p1 = p2
0.5 advisedBy(s1, p), coauthor(s1, s2) => advisedBy(s2, p)
"""


def generate_lp(scale: DatasetScale | None = None) -> Dataset:
    """Generate an LP-like workload (one dense component)."""
    scale = scale or DatasetScale()
    rng = RandomSource(scale.seed)

    n_professors = scale.scaled(6)
    n_students = scale.scaled(18)
    n_publications = scale.scaled(30)

    program = MLNProgram("LP")
    program.declare_predicate(Predicate("professor", ("person",), closed_world=True))
    program.declare_predicate(Predicate("student", ("person",), closed_world=True))
    program.declare_predicate(Predicate("publication", ("title", "person"), closed_world=True))
    program.declare_predicate(Predicate("coauthor", ("person", "person"), closed_world=True))
    program.declare_predicate(Predicate("advisedBy", ("person", "person"), closed_world=False))
    for line in LP_RULES.strip().splitlines():
        program.add_rule_text(line)

    professors: List[str] = [f"Prof{i}" for i in range(1, n_professors + 1)]
    students: List[str] = [f"Stu{i}" for i in range(1, n_students + 1)]
    program.add_constants("person", professors + students)
    for professor in professors:
        program.add_evidence("professor", (professor,))
    for student in students:
        program.add_evidence("student", (student,))

    # Publications: each is written by one professor and one or two students.
    for index in range(1, n_publications + 1):
        title = f"T{index}"
        program.add_constants("title", [title])
        professor = rng.pick(professors)
        first_student = rng.pick(students)
        program.add_evidence("publication", (title, professor))
        program.add_evidence("publication", (title, first_student))
        if rng.random() < 0.5:
            second_student = rng.pick(students)
            if second_student != first_student:
                program.add_evidence("publication", (title, second_student))
                program.add_evidence("coauthor", (first_student, second_student))

    # A chain of co-authorships over every person (students and professors)
    # keeps the whole department connected, so the MRF is one component —
    # the structural property of the real UW-CSE data.
    everyone = students + professors
    for first, second in zip(everyone, everyone[1:]):
        program.add_evidence("coauthor", (first, second))

    return Dataset(
        name="LP",
        program=program,
        description=(
            "Link prediction of student-adviser relationships from an "
            "administrative database; a single dense MRF component."
        ),
        expected_components=1,
        metadata={
            "professors": n_professors,
            "students": n_students,
            "publications": n_publications,
        },
    )
