"""Synthetic workload generators mirroring the paper's four testbeds.

The original LP / IE / RC / ER datasets (UW-CSE, Citeseer, Cora) are not
redistributable and are far larger than a laptop-scale reproduction needs.
Each generator here reproduces the *structural signature* that drives the
paper's results at a configurable scale:

* **LP** (Link Prediction) — a dense, single-component MRF over
  student/adviser relationships;
* **IE** (Information Extraction) — thousands of tiny (2-atom / 3-atom)
  components, one per citation segment, which is where component-aware
  search shines;
* **RC** (Relational Classification) — the paper's running example
  (Figure 1): paper topic classification over a citation/co-author graph
  that fragments into hundreds of components;
* **ER** (Entity Resolution) — a transitive-closure style program whose MRF
  is one large dense component (partitioning cuts many clauses).

Additionally :mod:`repro.datasets.example1` and :mod:`repro.datasets.example2`
build the synthetic MRFs of the paper's Examples 1 and 2 (used for the
Theorem 3.1 / Figure 8 experiments), and :mod:`repro.datasets.synthetic`
generates random programs for property-based testing.
"""

from repro.datasets.base import Dataset, DatasetScale
from repro.datasets.er import generate_er
from repro.datasets.example1 import example1_mrf, example1_store
from repro.datasets.example2 import example2_mrf
from repro.datasets.ie import generate_ie
from repro.datasets.lp import generate_lp
from repro.datasets.rc import generate_rc
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.datasets.synthetic import random_program

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "DatasetScale",
    "example1_mrf",
    "example1_store",
    "example2_mrf",
    "generate_er",
    "generate_ie",
    "generate_lp",
    "generate_rc",
    "load_dataset",
    "random_program",
]
