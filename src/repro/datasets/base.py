"""Common dataset types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.program import DatasetStatistics, MLNProgram


@dataclass
class DatasetScale:
    """Knobs shared by all generators.

    ``factor`` scales the default entity counts multiplicatively; the
    benchmarks use ``factor=1.0`` (small, seconds-scale runs) and the scale
    sweep benchmark increases it.
    """

    factor: float = 1.0
    seed: int = 0

    def scaled(self, count: int) -> int:
        return max(int(round(count * self.factor)), 1)


@dataclass
class Dataset:
    """A generated workload: the program plus descriptive metadata."""

    name: str
    program: MLNProgram
    description: str
    expected_components: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def statistics(self) -> DatasetStatistics:
        return self.program.statistics()

    def statistics_row(self) -> Dict[str, object]:
        """One row of the Table 1 reproduction."""
        row: Dict[str, object] = {"dataset": self.name}
        row.update(self.statistics().as_dict())
        if self.expected_components is not None:
            row["#components (expected shape)"] = self.expected_components
        return row
