"""The AST-walker framework behind the determinism & parity linter.

The analyzer turns the ROADMAP's "Invariants to preserve" list into
machine-checked rules over the source tree.  This module is the rule-agnostic
half: it loads every Python file under the scanned roots, parses it once,
indexes ``# repro: allow(<rule>): <justification>`` suppression comments, and
runs every registered :class:`Rule` — per-file rules against each
:class:`SourceFile`, project rules (the cross-file seam checks) against the
whole :class:`Project`.

Suppressions
------------
A finding is silenced by a comment on the same line, or by a standalone
comment on the line(s) immediately above the offending statement::

    atoms = list(component_atoms)  # repro: allow(det-set-iter): ids, sorted below

    # repro: allow(fork-module-state): per-process cache, never shared back
    _WORKER_CACHE.update(fresh)

Several rules may share one comment (``allow(rule-a, rule-b): why``).  The
justification text after the colon is *required*: a suppression without one
(or naming an unknown rule, or matching no finding) is itself reported under
the ``bad-suppression`` rule, so the escape hatch cannot silently rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterator, List, Optional, Sequence, Tuple, Type

#: Matches one suppression comment anywhere in a physical line.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_\s,-]+?)\s*\)(?:\s*:\s*(?P<why>.*\S))?\s*$"
)

#: Rule id used for suppression-hygiene findings (always enforced).
BAD_SUPPRESSION = "bad-suppression"

#: Rule id used when a file cannot be parsed at all.
PARSE_ERROR = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """The location-independent identity used for baseline matching.

        Line/column are deliberately excluded so unrelated edits above a
        grandfathered finding do not invalidate the baseline.
        """
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow(...)`` comment."""

    comment_line: int
    effective_line: int
    rules: Tuple[str, ...]
    justification: str


class SourceFile:
    """A parsed Python source file plus its suppression index."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines: List[str] = self.text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as error:
            self.parse_error = Finding(
                rule=PARSE_ERROR,
                path=self.rel_path,
                line=error.lineno or 1,
                column=error.offset or 0,
                message=f"cannot parse file: {error.msg}",
            )
        self.suppressions: List[Suppression] = []
        self._suppressed_rules_by_line: Dict[int, List[Suppression]] = {}
        self._scan_suppressions()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------

    def _scan_suppressions(self) -> None:
        """Index real ``# repro: allow(...)`` comments (tokenizer-accurate).

        Comments are extracted with :mod:`tokenize` rather than by line
        regex alone, so suppression examples inside docstrings and string
        literals are never mistaken for live suppressions.
        """
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            justification = (match.group("why") or "").strip()
            comment_line = token.start[0]
            line = self.lines[comment_line - 1] if comment_line <= len(self.lines) else ""
            if line[: token.start[1]].strip():
                effective_line = comment_line  # trailing comment
            else:
                effective_line = self._next_code_line(comment_line)
            suppression = Suppression(comment_line, effective_line, rules, justification)
            self.suppressions.append(suppression)
            self._suppressed_rules_by_line.setdefault(effective_line, []).append(suppression)

    def _next_code_line(self, start_index: int) -> int:
        """1-based line number of the next non-blank, non-comment line."""
        for index in range(start_index, len(self.lines)):
            stripped = self.lines[index].strip()
            if stripped and not stripped.startswith("#"):
                return index + 1
        return start_index  # dangling comment at EOF; hygiene will flag it

    def suppression_for(self, finding: Finding) -> Optional[Suppression]:
        for suppression in self._suppressed_rules_by_line.get(finding.line, []):
            if finding.rule in suppression.rules:
                return suppression
        return None

    # ------------------------------------------------------------------
    # AST helpers shared by rules
    # ------------------------------------------------------------------

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the file's AST, built once on demand."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents

    def walk(self) -> Iterator[ast.AST]:
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)

    def segments(self) -> Tuple[str, ...]:
        """Path segments of the file relative to the scan root."""
        return tuple(self.rel_path.split("/"))

    def in_directory(self, *names: str) -> bool:
        """True when any parent directory (not the filename) matches a name."""
        return any(segment in names for segment in self.segments()[:-1])

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel_path, line=line, column=column, message=message)


class Project:
    """Every scanned source file, addressable by relative-path suffix."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: List[SourceFile] = list(files)

    def find(self, rel_suffix: str) -> Optional[SourceFile]:
        """The unique file whose relative path ends with the given suffix."""
        matches = [
            source
            for source in self.files
            if source.rel_path == rel_suffix or source.rel_path.endswith("/" + rel_suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        return None


class Rule:
    """Base class of every analyzer rule.

    Subclasses set the class-level metadata and override :meth:`check`
    (per-file rules) and/or :meth:`check_project` (cross-file seam rules).
    Rules must be stateless: one instance is reused across all files.
    """

    id: ClassVar[str] = ""
    family: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def applies_to(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, in id order."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen.setdefault(path.resolve())
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                seen.setdefault(candidate.resolve())
    return iter(seen)


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run, before baseline filtering."""

    root: Path
    rule_ids: List[str]
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    file_count: int = 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def _scan_root(paths: Sequence[Path]) -> Path:
    """The directory relative paths are reported against.

    A single directory argument (the common case, ``python -m repro.analysis
    src``) anchors everything at that directory; otherwise the common parent
    of all arguments is used.
    """
    resolved = [path.resolve() for path in paths]
    if len(resolved) == 1 and resolved[0].is_dir():
        return resolved[0]
    candidates = [path if path.is_dir() else path.parent for path in resolved]
    common = candidates[0]
    for candidate in candidates[1:]:
        while not candidate.is_relative_to(common):
            common = common.parent
    return common


def run_analysis(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run every (selected) rule over the given paths.

    Returns the raw report: genuine findings (with suppressed ones split
    out), plus suppression-hygiene findings.  Baseline filtering is layered
    on top by the CLI so programmatic callers see everything.
    """
    root = _scan_root(paths)
    sources = [SourceFile(root, path) for path in iter_python_files(paths)]
    project = Project(root, sources)

    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]

    report = AnalysisReport(root=root, rule_ids=[rule.id for rule in rules])
    report.file_count = len(sources)

    raw: List[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            raw.append(source.parse_error)
            continue
        for rule in rules:
            if rule.applies_to(source):
                raw.extend(rule.check(source, project))
    for rule in rules:
        raw.extend(rule.check_project(project))

    # Split suppressed findings out and track which suppressions fired.
    used: Dict[Tuple[str, int, int], None] = {}
    for finding in raw:
        source = project.find(finding.path)
        suppression = source.suppression_for(finding) if source is not None else None
        if suppression is not None:
            used.setdefault((finding.path, suppression.comment_line, id(suppression)))
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    report.findings.extend(
        _suppression_hygiene(project, used, full_rule_set=select is None)
    )
    report.findings = report.sorted_findings()
    return report


def _suppression_hygiene(
    project: Project,
    used: Dict[Tuple[str, int, int], None],
    full_rule_set: bool,
) -> Iterator[Finding]:
    """Findings for malformed, unknown-rule and unused suppressions.

    The unused-suppression check only runs when every rule was active
    (``--select`` would otherwise make valid suppressions look unused).
    """
    known = set(RULE_REGISTRY) | {BAD_SUPPRESSION, PARSE_ERROR}
    for source in project.files:
        for suppression in source.suppressions:
            where = Finding(
                rule=BAD_SUPPRESSION,
                path=source.rel_path,
                line=suppression.comment_line,
                column=0,
                message="",
            )
            if not suppression.justification:
                yield Finding(
                    rule=BAD_SUPPRESSION,
                    path=where.path,
                    line=where.line,
                    column=0,
                    message=(
                        "suppression is missing its justification; write "
                        "'# repro: allow(<rule>): <why this is safe>'"
                    ),
                )
                continue
            unknown = [rule for rule in suppression.rules if rule not in known]
            if unknown:
                yield Finding(
                    rule=BAD_SUPPRESSION,
                    path=where.path,
                    line=where.line,
                    column=0,
                    message=f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
                continue
            key = (source.rel_path, suppression.comment_line, id(suppression))
            if full_rule_set and key not in used:
                yield Finding(
                    rule=BAD_SUPPRESSION,
                    path=where.path,
                    line=where.line,
                    column=0,
                    message=(
                        "unused suppression (no "
                        + ", ".join(suppression.rules)
                        + " finding on the suppressed line); delete it"
                    ),
                )
