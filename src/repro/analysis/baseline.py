"""The checked-in baseline of grandfathered analyzer findings.

The baseline lets the analyzer gate a tree that still contains *known,
reviewed* violations: each entry records a finding's location-independent
identity (rule, path, message) plus how many identical findings are
grandfathered in that file — line numbers are deliberately not stored, so
edits elsewhere in a file do not invalidate the baseline.  New findings
(anything beyond the recorded multiset) still fail the run, and entries that
no longer match anything are reported as stale so the baseline shrinks
monotonically instead of rotting.

Every entry carries a required ``justification`` string, mirroring the
inline ``# repro: allow(...)`` contract: nothing is grandfathered silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.framework import Finding

BASELINE_VERSION = 1

#: The identity a baseline entry matches findings by.
BaselineKey = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    count: int
    justification: str

    def key(self) -> BaselineKey:
        return (self.rule, self.path, self.message)


@dataclass
class BaselineMatch:
    """The outcome of filtering a finding list through a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


class Baseline:
    """An in-memory baseline, loadable from / serialisable to JSON."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: not a version-{BASELINE_VERSION} analysis baseline"
            )
        raw_entries = document.get("findings")
        if not isinstance(raw_entries, list):
            raise ValueError(f"{path}: baseline 'findings' must be a list")
        entries: List[BaselineEntry] = []
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: baseline entries must be objects")
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"{path}: baseline entry for {raw.get('rule')!r} in "
                    f"{raw.get('path')!r} has no justification"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    count=int(raw.get("count", 1)),
                    justification=justification,
                )
            )
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        """Build a baseline grandfathering the given findings.

        Used by ``--update-baseline``; the single justification is applied
        to every entry and should be edited per entry afterwards.
        """
        counts: Dict[BaselineKey, int] = {}
        for finding in findings:
            counts[finding.key()] = counts.get(finding.key(), 0) + 1
        entries = [
            BaselineEntry(rule=rule, path=path, message=message, count=count,
                          justification=justification)
            for (rule, path, message), count in sorted(counts.items())
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        document = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    "count": entry.count,
                    "justification": entry.justification,
                }
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def apply(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split findings into new vs grandfathered, and report stale entries."""
        budget: Dict[BaselineKey, int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
        match = BaselineMatch()
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                match.baselined.append(finding)
            else:
                match.new.append(finding)
        leftover = {key for key, remaining in budget.items() if remaining > 0}
        match.stale = [entry for entry in self.entries if entry.key() in leftover]
        return match
