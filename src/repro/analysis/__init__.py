"""Static analysis for the determinism and backend-parity invariants.

Every result this reproduction reports is certified by bit-for-bit parity
suites across the ``kernel_backend`` / ``execution_backend`` /
``parallel_backend`` seams.  The invariants that make that parity possible —
deterministic iteration order, sequential float accumulation, seed-derived
RNG streams, fork-safe shared-memory access, fully threaded seam options —
are enforced here as purpose-built AST rules rather than left to review.

Run it as ``python -m repro.analysis src`` (wired into ``scripts/check.sh``
as a gating stage); see ``--list-rules`` for the rule families and
ROADMAP.md ("Static analysis") for how rules map to the invariant list.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineMatch
from repro.analysis.framework import (
    AnalysisReport,
    Finding,
    Project,
    Rule,
    RULE_REGISTRY,
    SourceFile,
    Suppression,
    all_rules,
    register,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "BaselineMatch",
    "Finding",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "SourceFile",
    "Suppression",
    "all_rules",
    "register",
    "run_analysis",
]
