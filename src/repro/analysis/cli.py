"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes
----------
* ``0`` — clean: no findings beyond the baseline (suppressions honoured).
* ``1`` — violations: new findings, malformed suppressions, or an
  unreadable baseline.
* ``2`` — usage errors (argparse).

The default baseline is ``analysis_baseline.json`` next to the scanned
root (i.e. the repository root when scanning ``src``); pass ``--baseline``
to point elsewhere or ``--no-baseline`` to see every finding.
``--json-out`` records the findings in the same machine-readable document
shape the benchmarks use (``{"benchmark", "metadata", "rows"}`` — see
``benchmarks/results/README.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.framework import AnalysisReport, all_rules, run_analysis

#: File name of the default baseline, resolved next to the scan root.
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & parity linter: AST-based invariant checks over the "
            "kernel/execution/parallel backend seams (see ROADMAP.md, "
            "'Invariants to preserve')."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} beside the scan root)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write machine-readable findings JSON to this path",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the summary line",
    )
    return parser


def _list_rules() -> int:
    by_family: Dict[str, List[str]] = {}
    for rule in all_rules():
        line = f"  {rule.id:<22} {rule.description}"
        by_family.setdefault(rule.family, []).append(line)
    for family in sorted(by_family):
        print(f"{family}:")
        for line in by_family[family]:
            print(line)
    print(
        "\nSuppress a finding with '# repro: allow(<rule>): <justification>' "
        "on (or directly above) the offending line; the justification is "
        "required."
    )
    return 0


def _resolve_baseline_path(
    arguments: argparse.Namespace, report: AnalysisReport
) -> Optional[Path]:
    if arguments.no_baseline:
        return None
    if arguments.baseline is not None:
        return Path(arguments.baseline)
    candidate = report.root.parent / DEFAULT_BASELINE_NAME
    if candidate.exists() or arguments.update_baseline:
        return candidate
    return None


def _write_json(
    path: Path,
    report: AnalysisReport,
    match: BaselineMatch,
    baseline_path: Optional[Path],
) -> None:
    document = {
        "benchmark": "analysis",
        "metadata": {
            "root": str(report.root),
            "rules": report.rule_ids,
            "baseline": str(baseline_path) if baseline_path is not None else None,
            "files_scanned": report.file_count,
            "counts": {
                "new": len(match.new),
                "baselined": len(match.baselined),
                "suppressed": len(report.suppressed),
                "stale_baseline_entries": len(match.stale),
            },
        },
        "rows": [finding.to_json() for finding in match.new],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"[json] wrote {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.list_rules:
        return _list_rules()

    select = None
    if arguments.select is not None:
        select = [part.strip() for part in arguments.select.split(",") if part.strip()]

    paths = [Path(path) for path in arguments.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        report = run_analysis(paths, select=select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(arguments, report)

    if arguments.update_baseline:
        if baseline_path is None:  # pragma: no cover - argparse default guards this
            print("error: --update-baseline needs a baseline path", file=sys.stderr)
            return 2
        baseline = Baseline.from_findings(
            report.findings,
            justification="grandfathered by --update-baseline; review and justify",
        )
        baseline.save(baseline_path)
        print(
            f"wrote {len(baseline.entries)} baseline entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    match = BaselineMatch(new=list(report.findings))
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 1
        match = baseline.apply(report.findings)

    if not arguments.quiet:
        for finding in match.new:
            print(finding.render())
        for entry in match.stale:
            print(
                f"warning: stale baseline entry [{entry.rule}] {entry.path}: "
                f"{entry.message!r} no longer matches; remove it"
            )

    if arguments.json_out is not None:
        _write_json(Path(arguments.json_out), report, match, baseline_path)

    print(
        f"repro.analysis: {report.file_count} files, "
        f"{len(report.rule_ids)} rules: "
        f"{len(match.new)} new finding(s), {len(match.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed, {len(match.stale)} stale "
        "baseline entr" + ("y" if len(match.stale) == 1 else "ies")
    )
    return 1 if match.new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
