"""``python -m repro.analysis`` — run the determinism & parity linter."""

import sys

from repro.analysis.cli import main

sys.exit(main())
