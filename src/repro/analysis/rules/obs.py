"""Purity of the observability layer (``repro.obs``).

Tracing and metrics must be *non-perturbing*: turning a tracer on cannot
change a single result bit.  The parity suite proves that dynamically;
``obs-purity`` enforces the static side of the contract — observability
code may observe, never act:

* no randomness: importing ``random`` / ``secrets`` or the repo's
  ``RandomSource`` from inside ``repro/obs`` means an exporter or tracer
  could consume RNG state the search depends on;
* no engine state: importing ``repro.core.session`` / ``repro.core.engine``
  would let obs code reach back into the layer it is supposed to watch
  (the dependency must point one way: session → obs);
* no clock mutation: ``.advance(...)`` / ``.charge(...)`` calls are the
  simulated clock's write API — obs code reads the clock through a
  caller-supplied zero-argument callable and must never move it.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register

#: Modules observability code must never import (randomness and the
#: session/engine layer it observes).
_FORBIDDEN_IMPORTS = (
    "random",
    "secrets",
    "repro.utils.rng",
    "repro.core.session",
    "repro.core.engine",
)

#: Names whose import marks an RNG dependency regardless of module path.
_FORBIDDEN_NAMES = ("RandomSource",)

#: Attribute calls that mutate a simulated clock.
_CLOCK_MUTATORS = ("advance", "charge")


def _imported_module(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom) and node.module is not None:
        yield node.module


@register
class ObsPurityRule(Rule):
    """Observability code drawing randomness, touching session state or
    advancing a clock."""

    id: ClassVar[str] = "obs-purity"
    family: ClassVar[str] = "observability"
    description: ClassVar[str] = (
        "repro/obs code must be purely observational: no random/secrets/"
        "RandomSource imports (tracing may never consume RNG state the "
        "search depends on), no repro.core.session/engine imports (the "
        "dependency points session -> obs, never back), and no "
        ".advance()/.charge() calls (the simulated clock is read through "
        "a caller-supplied callable, never moved). Tracing on vs off must "
        "be bit-identical; this rule pins the static half of that "
        "contract."
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_directory("obs")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if source.tree is None:
            return
        for node in source.walk():
            for module in _imported_module(node):
                root = module.split(".")[0]
                if module in _FORBIDDEN_IMPORTS or root in ("random", "secrets"):
                    yield source.finding(
                        node,
                        self.id,
                        f"obs code imports {module!r}: observability must "
                        "not draw randomness or reach into the session "
                        "layer it observes",
                    )
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _FORBIDDEN_NAMES:
                        yield source.finding(
                            node,
                            self.id,
                            f"obs code imports {alias.name}: tracers and "
                            "exporters must never hold an RNG",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLOCK_MUTATORS
            ):
                yield source.finding(
                    node,
                    self.id,
                    f"obs code calls .{node.func.attr}(...): the simulated "
                    "clock is read-only from the observability layer "
                    "(use the injected zero-arg reader)",
                )
