"""Fork-safety rules for the multiprocess parallel backend.

The processes backend forks workers that inherit the parent's memory image
and then communicate only through queues and the shared-memory component
buffers.  Four things keep that safe and deterministic, and each gets a
rule: worker entrypoints must not mutate fork-inherited module globals,
shared-memory buffers must not be written after they are published to
workers, a live pool must never repack its buffers (tear down and fork a
fresh pool instead), and task callables shipped to a pool must be
picklable (no lambdas or closures).

One further rule guards thread-level concurrency rather than fork
safety: ``req-state-isolation`` checks that methods a class marks as
request-scoped (``_request_scoped_methods`` — the engine session's
serve/prepare/search paths, which interleave across admitted requests)
never write session-level state directly.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, List, Optional, Set

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register

#: Methods that mutate the builtin containers in place.
_MUTATORS = (
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "setdefault", "pop", "popitem", "clear", "appendleft",
)

#: Pool-submission call attributes whose first argument must be picklable.
_POOL_SUBMITTERS = ("submit", "apply_async", "map_async", "imap", "imap_unordered")


def _module_mutable_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        if value is None or not _is_mutable_container(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
                        "deque")
    return False


def _is_worker_entrypoint(name: str) -> bool:
    return name == "execute_component_task" or name.startswith("_worker")


@register
class ForkModuleStateRule(Rule):
    """Mutation of fork-inherited module globals inside worker entrypoints."""

    id: ClassVar[str] = "fork-module-state"
    family: ClassVar[str] = "fork-safety"
    description: ClassVar[str] = (
        "worker entrypoints (execute_component_task, _worker*) must not "
        "mutate module-level mutable state: forked workers each inherit a "
        "private copy, so writes silently diverge between processes and "
        "between the serial and processes backends. Keep worker caches in "
        "locals owned by the worker loop."
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_directory("parallel")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if source.tree is None:
            return
        module_mutables = _module_mutable_names(source.tree)
        for node in source.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_worker_entrypoint(node.name):
                    yield from self._check_function(source, node, module_mutables)

    def _check_function(
        self,
        source: SourceFile,
        function: ast.AST,
        module_mutables: Set[str],
    ) -> Iterator[Finding]:
        shadowed: Set[str] = set()
        declared_global: Set[str] = set()
        body_nodes = list(ast.walk(function))
        for node in body_nodes:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shadowed.add(target.id)
        for node in body_nodes:
            if isinstance(node, ast.Global):
                hits = [name for name in node.names if name in module_mutables]
                for name in hits:
                    yield source.finding(
                        node, self.id,
                        f"worker entrypoint declares 'global {name}' over "
                        "fork-inherited mutable state",
                    )
                continue
            name = self._mutated_module_name(node, module_mutables, shadowed,
                                             declared_global)
            if name is not None:
                yield source.finding(
                    node, self.id,
                    f"worker entrypoint mutates fork-inherited module state "
                    f"'{name}'; each forked worker diverges on its private copy",
                )

    def _mutated_module_name(
        self,
        node: ast.AST,
        module_mutables: Set[str],
        shadowed: Set[str],
        declared_global: Set[str],
    ) -> Optional[str]:
        def resolve(target: ast.expr) -> Optional[str]:
            if not isinstance(target, ast.Name):
                return None
            name = target.id
            if name not in module_mutables:
                return None
            if name in shadowed and name not in declared_global:
                return None  # plain assignment made it function-local
            return name

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                return resolve(node.func.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    hit = resolve(target.value)
                    if hit is not None:
                        return hit
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    hit = resolve(target.value)
                    if hit is not None:
                        return hit
        return None


@register
class SharedMemoryPublishRule(Rule):
    """Writes to shared-memory buffers after they are published to workers."""

    id: ClassVar[str] = "fork-shm-publish"
    family: ClassVar[str] = "fork-safety"
    description: ClassVar[str] = (
        "attributes cast from a SharedMemory buffer (e.g. shm.buf.cast(...)) "
        "may only be written while the owner is packing them (__init__ / "
        "pack / _pack*); once workers have attached, a write races their "
        "reads and breaks run-to-run determinism. Rebuild-and-repack instead "
        "of mutating a published segment. One sanctioned exception: a class "
        "may name result-region writer methods in a `_result_region_writers` "
        "class attribute; those methods may write shm attributes whose names "
        "contain 'result' (the result-shipping protocol orders each region "
        "write before its completion token, so the parent never reads a "
        "region concurrently with the worker writing it)."
    )

    _ALLOWED_WRITERS = ("__init__", "pack")
    #: Class attribute listing methods sanctioned to write result regions.
    _WRITERS_MARKER = "_result_region_writers"
    #: Substring an shm attribute must carry for the sanction to apply.
    _RESULT_MARKER = "result"

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_directory("parallel")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _shm_attributes(self, class_def: ast.ClassDef) -> Set[str]:
        """Attribute names assigned from a ``.buf.cast(...)`` expression."""
        attrs: Set[str] = set()
        for node in ast.walk(class_def):
            if not isinstance(node, ast.Assign):
                continue
            if not self._is_buf_cast(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs

    def _is_buf_cast(self, node: ast.expr) -> bool:
        """Matches ``<expr>.buf.cast(...)``."""
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return False
        if node.func.attr != "cast":
            return False
        value = node.func.value
        return isinstance(value, ast.Attribute) and value.attr == "buf"

    def _sanctioned_writers(self, class_def: ast.ClassDef) -> Set[str]:
        """Method names listed in the class's ``_result_region_writers``."""
        writers: Set[str] = set()
        for node in class_def.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            if value is None or not any(
                isinstance(target, ast.Name) and target.id == self._WRITERS_MARKER
                for target in targets
            ):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        writers.add(element.value)
        return writers

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        shm_attrs = self._shm_attributes(class_def)
        if not shm_attrs:
            return
        sanctioned = self._sanctioned_writers(class_def)
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in self._ALLOWED_WRITERS or method.name.startswith("_pack"):
                continue
            allow_result = method.name in sanctioned
            aliases = self._local_aliases(method, shm_attrs)
            for node in ast.walk(method):
                target = self._buffer_write_target(node, shm_attrs, aliases)
                if target is None:
                    continue
                if allow_result and self._RESULT_MARKER in target:
                    continue
                yield source.finding(
                    node, self.id,
                    f"write to published shared-memory buffer '{target}' in "
                    f"method '{method.name}' (writes are only safe during "
                    "packing, before workers attach)",
                )

    def _local_aliases(self, method: ast.AST, shm_attrs: Set[str]) -> Dict[str, str]:
        """Local alias name -> the shared-memory attribute it points at."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if isinstance(node.value, ast.Attribute) and node.value.attr in shm_attrs:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = node.value.attr
        return aliases

    def _buffer_write_target(
        self, node: ast.AST, shm_attrs: Set[str], aliases: Dict[str, str]
    ) -> Optional[str]:
        """The shm *attribute* a subscript write lands on, if any."""
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            return None
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            base = target.value
            if isinstance(base, ast.Attribute) and base.attr in shm_attrs:
                return base.attr
            if isinstance(base, ast.Name) and base.id in aliases:
                return aliases[base.id]
        return None


@register
class PoolLifecycleRule(Rule):
    """Shared-memory repacking on a live worker pool."""

    id: ClassVar[str] = "fork-pool-lifecycle"
    family: ClassVar[str] = "fork-safety"
    description: ClassVar[str] = (
        "a pool-like class (one that starts processes and owns packed "
        "shared-memory buffers in __init__) must never repack those buffers "
        "on a live pool: workers attached to the old segments at fork time "
        "and keep reading them, so a repack (any *BufferSet.pack(...) call, "
        "or rebinding a buffer-set attribute like self.buffers or "
        "self.result_buffers outside __init__) silently desynchronises "
        "parent and workers. Tear the pool down and fork a fresh one."
    )

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_directory("parallel")

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if isinstance(node, ast.ClassDef) and self._is_pool_class(node):
                yield from self._check_pool_class(source, node)

    def _find_init(self, class_def: ast.ClassDef) -> Optional[ast.FunctionDef]:
        return next(
            (
                method
                for method in class_def.body
                if isinstance(method, ast.FunctionDef) and method.name == "__init__"
            ),
            None,
        )

    def _is_pool_class(self, class_def: ast.ClassDef) -> bool:
        """A class whose __init__ binds both worker processes and buffers."""
        init = self._find_init(class_def)
        if init is None:
            return False
        bound = self._self_attribute_targets(init)
        return "buffers" in bound and "_processes" in bound

    def _check_pool_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        init = self._find_init(class_def)
        bound = self._self_attribute_targets(init) if init is not None else set()
        # Every buffer-set attribute the pool packed at fork time — e.g.
        # ``buffers`` (component structure) and ``result_buffers`` (result
        # regions) — is frozen for the pool's lifetime.
        protected = {attr for attr in bound if "buffers" in attr}
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    hits = self._self_attribute_targets_of(node) & protected
                    for attr in sorted(hits):
                        yield source.finding(
                            node, self.id,
                            f"method '{method.name}' rebinds self.{attr} on a "
                            "live pool; workers still read the segment packed "
                            "at fork time — build a new pool instead",
                        )
                if self._is_pack_call(node):
                    yield source.finding(
                        node, self.id,
                        f"method '{method.name}' repacks shared-memory buffers "
                        "on a live pool (*BufferSet.pack outside __init__); "
                        "build a new pool instead",
                    )

    def _self_attribute_targets(self, function: ast.FunctionDef) -> Set[str]:
        bound: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                bound |= self._self_attribute_targets_of(node)
        return bound

    def _self_attribute_targets_of(self, node: ast.Assign) -> Set[str]:
        targets: Set[str] = set()
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                targets.add(target.attr)
        return targets

    def _is_pack_call(self, node: ast.AST) -> bool:
        """Matches ``<Anything>BufferSet.pack(...)``."""
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return False
        if node.func.attr != "pack":
            return False
        value = node.func.value
        return isinstance(value, ast.Name) and value.id.endswith("BufferSet")


@register
class PoolTaskClosureRule(Rule):
    """Unpicklable callables handed to a process pool or Process target."""

    id: ClassVar[str] = "fork-task-closure"
    family: ClassVar[str] = "fork-safety"
    description: ClassVar[str] = (
        "callables shipped to a pool (submit/apply_async/imap*) or as a "
        "Process target must be module-level functions: lambdas and nested "
        "functions do not pickle, and closures capture parent state that "
        "diverges after fork. Pass a module-level function plus explicit "
        "arguments."
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        nested = self._nested_function_names(source)
        for node in source.walk():
            if not isinstance(node, ast.Call):
                continue
            callable_arg = self._shipped_callable(node)
            if callable_arg is None:
                continue
            if isinstance(callable_arg, ast.Lambda):
                yield source.finding(
                    callable_arg, self.id,
                    "lambda shipped to a worker pool cannot be pickled",
                )
            elif isinstance(callable_arg, ast.Name) and callable_arg.id in nested:
                yield source.finding(
                    callable_arg, self.id,
                    f"nested function '{callable_arg.id}' shipped to a worker "
                    "pool cannot be pickled (define it at module level)",
                )

    def _shipped_callable(self, call: ast.Call) -> Optional[ast.expr]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_SUBMITTERS:
            if call.args:
                return call.args[0]
            return None
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in ("Process", "Thread"):
            for keyword in call.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None

    def _nested_function_names(self, source: SourceFile) -> Set[str]:
        """Names of functions (or lambdas) defined inside another function."""
        nested: Set[str] = set()
        parents = source.parents()

        def inside_function(node: ast.AST) -> bool:
            ancestor = parents.get(node)
            while ancestor is not None:
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return True
                ancestor = parents.get(ancestor)
            return False

        for node in source.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function(node):
                    nested.add(node.name)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                if inside_function(node):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            nested.add(target.id)
        return nested


@register
class ReqStateIsolationRule(Rule):
    """Session-state writes from request-scoped code paths."""

    id: ClassVar[str] = "req-state-isolation"
    family: ClassVar[str] = "concurrency"
    description: ClassVar[str] = (
        "a class may name request-scoped methods in a "
        "`_request_scoped_methods` class attribute (the engine session "
        "does: the serve/prepare/search paths that run one admitted "
        "request); those methods must not write any attribute rooted at "
        "self — no assignment, augmented assignment, deletion or in-place "
        "container mutation — because several requests run them "
        "interleaved over one session and a write from one request "
        "silently corrupts another's state. Route writes through the "
        "sanctioned plumbing methods (lease check-out/check-in, "
        "_begin_request, _finish_request) instead."
    )

    #: Class attribute listing the request-scoped method names.
    _SCOPED_MARKER = "_request_scoped_methods"

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _scoped_methods(self, class_def: ast.ClassDef) -> Set[str]:
        """Method names listed in the class's ``_request_scoped_methods``."""
        scoped: Set[str] = set()
        for node in class_def.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            if value is None or not any(
                isinstance(target, ast.Name) and target.id == self._SCOPED_MARKER
                for target in targets
            ):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        scoped.add(element.value)
        return scoped

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        scoped = self._scoped_methods(class_def)
        if not scoped:
            return
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name not in scoped:
                continue
            for node in ast.walk(method):
                for chain in self._session_writes(node):
                    yield source.finding(
                        node, self.id,
                        f"request-scoped method '{method.name}' writes session "
                        f"state '{chain}'; interleaved requests share the "
                        "session — route the write through the sanctioned "
                        "plumbing methods",
                    )

    def _session_writes(self, node: ast.AST) -> Iterator[str]:
        """Chains rooted at ``self`` that this statement writes to."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets: List[ast.expr] = node.targets
            else:
                targets = [node.target]
            for target in targets:
                chain = self._self_rooted(target)
                if chain is not None:
                    yield chain
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                chain = self._self_rooted(target)
                if chain is not None:
                    yield chain
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                chain = self._self_rooted(node.func.value)
                if chain is not None:
                    yield f"{chain}.{node.func.attr}(...)"

    def _self_rooted(self, target: ast.expr) -> Optional[str]:
        """Dotted rendering of an attribute/subscript chain rooted at ``self``."""
        parts: List[str] = []
        node = target
        while True:
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                parts.append("[...]")
                node = node.value
            elif isinstance(node, ast.Name):
                if node.id != "self" or not parts:
                    return None
                rendered = "self"
                for part in reversed(parts):
                    if part == "[...]":
                        rendered += "[...]"
                    else:
                        rendered += f".{part}"
                return rendered
            else:
                return None


__all__ = [
    "ForkModuleStateRule",
    "PoolLifecycleRule",
    "PoolTaskClosureRule",
    "ReqStateIsolationRule",
    "SharedMemoryPublishRule",
]
