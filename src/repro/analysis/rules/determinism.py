"""Determinism rules: hash-order, raw RNG, wall-clock and float accumulation.

These rules enforce the first two "Invariants to preserve" of ROADMAP.md:
seeded runs must be bit-for-bit reproducible, which means no iteration order
may depend on hash seeding or object identity, every random draw must come
from the injected seeded :class:`repro.utils.rng.RandomSource`, and float
accumulation must happen in one deterministic sequence.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, Optional, Set

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register

#: Builtin constructors producing unordered collections.
_UNORDERED_CALLS = ("set", "frozenset")

#: Call wrappers that impose an order (or don't care about one).
_ORDER_RESTORING_CALLS = ("sorted", "min", "max", "len", "any", "all")


def _is_unordered_expr(node: ast.expr) -> bool:
    """True for expressions whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _UNORDERED_CALLS
    return False


def _enclosing_call_name(source: SourceFile, node: ast.AST) -> Optional[str]:
    """Name of the call this node is a direct argument of, if any."""
    parent = source.parents().get(node)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        if node in parent.args:
            return parent.func.id
    return None


def _module_aliases(source: SourceFile, module: str) -> Set[str]:
    """Local names the given module is importable under in this file."""
    aliases: Set[str] = set()
    for node in source.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(source: SourceFile, module: str) -> Dict[str, str]:
    """``local name -> original name`` for ``from <module> import ...``."""
    imported: Dict[str, str] = {}
    for node in source.walk():
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                imported[alias.asname or alias.name] = alias.name
    return imported


@register
class UnorderedIterationRule(Rule):
    """Iteration (or ordered materialisation) of an unordered set expression."""

    id: ClassVar[str] = "det-set-iter"
    family: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "for-loops, list/dict comprehensions and list()/tuple() calls must not "
        "consume a set/frozenset directly: set iteration order depends on the "
        "hash seed, so any ordered output derived from it is nondeterministic. "
        "Sort the set or deduplicate order-preservingly (dict.fromkeys)."
    )

    _MESSAGE = (
        "iteration over an unordered set expression; sort it or use an "
        "order-preserving dedup (e.g. dict.fromkeys) so downstream order "
        "is deterministic"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if isinstance(node, ast.For) and _is_unordered_expr(node.iter):
                yield source.finding(node.iter, self.id, self._MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                for generator in node.generators:
                    if _is_unordered_expr(generator.iter):
                        yield source.finding(generator.iter, self.id, self._MESSAGE)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_unordered_expr(node.args[0])
            ):
                wrapper = _enclosing_call_name(source, node)
                if wrapper not in _ORDER_RESTORING_CALLS:
                    yield source.finding(node.args[0], self.id, self._MESSAGE)


@register
class UnorderedFloatSumRule(Rule):
    """Float accumulation over an unordered iterable."""

    id: ClassVar[str] = "det-float-sum"
    family: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "sum()/math.fsum() over a set (or a generator driven by one) "
        "accumulates floats in hash order; float addition is not associative, "
        "so totals drift across runs and machines. Accumulate over a "
        "deterministically ordered sequence instead."
    )

    _MESSAGE = (
        "float accumulation over an unordered iterable; the sequential-"
        "accumulation invariant requires a deterministic addition order"
    )

    def _is_sum_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("sum", "fsum"):
            return True
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "fsum"
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
        )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if not (isinstance(node, ast.Call) and self._is_sum_call(node) and node.args):
                continue
            argument = node.args[0]
            if _is_unordered_expr(argument):
                yield source.finding(argument, self.id, self._MESSAGE)
            elif isinstance(argument, (ast.GeneratorExp, ast.ListComp)):
                # Counting generators (constant element) are order-insensitive.
                if isinstance(argument.elt, ast.Constant):
                    continue
                for generator in argument.generators:
                    if _is_unordered_expr(generator.iter):
                        yield source.finding(generator.iter, self.id, self._MESSAGE)


@register
class RawRandomRule(Rule):
    """Raw randomness sources outside the sanctioned seeded wrapper."""

    id: ClassVar[str] = "det-raw-random"
    family: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "every random draw must come from the injected seeded RandomSource "
        "(repro/utils/rng.py, the only sanctioned home of the random module); "
        "module-level random.*, os.urandom, uuid.uuid1/uuid4, secrets.* and "
        "numpy.random.* make runs unreproducible."
    )

    #: The one file allowed to touch the random module.
    _SANCTIONED = ("utils", "rng.py")

    def applies_to(self, source: SourceFile) -> bool:
        segments = source.segments()
        return segments[-2:] != self._SANCTIONED

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        random_aliases = _module_aliases(source, "random")
        secrets_aliases = _module_aliases(source, "secrets")
        numpy_random_aliases = _module_aliases(source, "numpy.random")
        from_random = _from_imports(source, "random")
        from_secrets = _from_imports(source, "secrets")
        for node in source.walk():
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base = node.value.id
                if base in random_aliases or base in secrets_aliases:
                    yield source.finding(
                        node,
                        self.id,
                        f"raw '{base}.{node.attr}' outside repro.utils.rng; "
                        "draw from the injected RandomSource instead",
                    )
                elif base in numpy_random_aliases:
                    yield source.finding(
                        node, self.id,
                        "numpy.random is not seed-injected; use the RandomSource stream",
                    )
                elif base == "os" and node.attr == "urandom":
                    yield source.finding(
                        node, self.id, "os.urandom is unseeded entropy"
                    )
                elif base == "uuid" and node.attr in ("uuid1", "uuid4"):
                    yield source.finding(
                        node, self.id, f"uuid.{node.attr} draws unseeded entropy"
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
                # numpy.random.<fn> via a numpy alias (np.random.shuffle, ...).
                inner = node.value
                if inner.attr == "random" and isinstance(inner.value, ast.Name):
                    if inner.value.id in _module_aliases(source, "numpy"):
                        yield source.finding(
                            node, self.id,
                            "numpy.random is not seed-injected; use the RandomSource stream",
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in from_random:
                    yield source.finding(
                        node, self.id,
                        f"'{from_random[node.id]}' imported from the random module; "
                        "draw from the injected RandomSource instead",
                    )
                elif node.id in from_secrets:
                    yield source.finding(
                        node, self.id,
                        f"secrets.{from_secrets[node.id]} is unseeded entropy",
                    )


@register
class WallClockRule(Rule):
    """Wall-clock reads inside the deterministic kernel/grounding core."""

    id: ClassVar[str] = "det-wallclock"
    family: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "inference/grounding/mrf/parallel/partitioning/rdbms code must not "
        "read wall-clock time (time.*, datetime.now/utcnow): results and "
        "deadlines there are driven by the deterministic SimulatedClock "
        "(repro/utils/clock.py is the sanctioned wrapper)."
    )

    _SCOPED_DIRS = ("inference", "grounding", "mrf", "parallel", "partitioning", "rdbms")
    _DATETIME_ATTRS = ("now", "utcnow", "today")

    def applies_to(self, source: SourceFile) -> bool:
        return source.in_directory(*self._SCOPED_DIRS)

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        time_aliases = _module_aliases(source, "time")
        from_time = _from_imports(source, "time")
        for node in source.walk():
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base = node.value.id
                if base in time_aliases:
                    yield source.finding(
                        node,
                        self.id,
                        f"wall-clock read '{base}.{node.attr}' in deterministic core "
                        "code; charge the SimulatedClock instead",
                    )
                elif base in ("datetime", "date") and node.attr in self._DATETIME_ATTRS:
                    yield source.finding(
                        node, self.id,
                        f"wall-clock read '{base}.{node.attr}' in deterministic core code",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in from_time:
                    yield source.finding(
                        node, self.id,
                        f"wall-clock read '{from_time[node.id]}' (imported from time) "
                        "in deterministic core code; charge the SimulatedClock instead",
                    )


@register
class IdHashOrderRule(Rule):
    """Ordering keyed on object identity or hash values."""

    id: ClassVar[str] = "det-id-hash-order"
    family: ClassVar[str] = "determinism"
    description: ClassVar[str] = (
        "sorted()/min()/max()/.sort() keyed on id() or hash() orders by "
        "allocation address or hash seed, which differs between runs and "
        "processes; key on a stable attribute (atom id, clause index) instead."
    )

    _SORTERS = ("sorted", "min", "max", "sort", "groupby")

    def _key_is_identity(self, key: ast.expr) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda) and isinstance(key.body, ast.Call):
            func = key.body.func
            if isinstance(func, ast.Name) and func.id in ("id", "hash"):
                return func.id
        return None

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in source.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name: Optional[str] = None
            if isinstance(func, ast.Name) and func.id in self._SORTERS:
                name = func.id
            elif isinstance(func, ast.Attribute) and func.attr in ("sort", "groupby"):
                name = func.attr
            if name is None:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key":
                    which = self._key_is_identity(keyword.value)
                    if which is not None:
                        yield source.finding(
                            keyword.value,
                            self.id,
                            f"{name}() keyed on {which}() is ordered by "
                            "allocation/hash state, not by data; use a stable key",
                        )


__all__ = [
    "IdHashOrderRule",
    "RawRandomRule",
    "UnorderedFloatSumRule",
    "UnorderedIterationRule",
    "WallClockRule",
]
