"""Seam-conformance rules: structural checks across the three backend seams.

Unlike the per-file determinism rules, these inspect several files at once:

* ``seam-kernel-api`` pins the kernel seam: the public methods of
  :class:`SearchState` (``inference/state.py``) are the seam API, and every
  retained backend (``reference_kernel.py``'s executable spec,
  ``vector_kernel.py``'s numpy kernel) must implement them — and must not
  grow public methods the seam does not define, which is how API drift
  between backends starts.
* ``seam-config-threading`` pins the configuration seams: every
  ``*_backend`` option declared on :class:`InferenceConfig`
  (``core/config.py``) must be exposed as a CLI flag, forwarded into the
  config construction in ``cli.py``, and actually read by
  ``core/engine.py`` — a backend knob that silently stops being threaded
  through any of those layers is a parity bug waiting for a workload.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import Finding, Project, Rule, SourceFile, register


def _find_class(source: Optional[SourceFile], name: str) -> Optional[ast.ClassDef]:
    if source is None or source.tree is None:
        return None
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _public_methods(class_def: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    methods: Dict[str, ast.FunctionDef] = {}
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            methods[node.name] = node
    return methods


def _positional_names(function: ast.FunctionDef) -> Tuple[str, ...]:
    arguments = function.args
    names = [arg.arg for arg in arguments.posonlyargs + arguments.args]
    return tuple(names[1:])  # drop self


@register
class KernelApiRule(Rule):
    """Every SearchState seam member implemented by every kernel backend."""

    id: ClassVar[str] = "seam-kernel-api"
    family: ClassVar[str] = "seam-conformance"
    description: ClassVar[str] = (
        "the public methods of SearchState (inference/state.py) are the "
        "kernel seam API: ReferenceSearchState and VectorSearchState must "
        "implement (or inherit) each of them with matching positional "
        "signatures, and must not add public methods the seam does not "
        "declare — that is how backends drift apart."
    )

    _STATE_FILE = "inference/state.py"
    _BACKENDS: Tuple[Tuple[str, str], ...] = (
        ("inference/reference_kernel.py", "ReferenceSearchState"),
        ("inference/vector_kernel.py", "VectorSearchState"),
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        state_source = project.find(self._STATE_FILE)
        seam_class = _find_class(state_source, "SearchState")
        if state_source is None or seam_class is None:
            return
        api = _public_methods(seam_class)
        for rel_path, class_name in self._BACKENDS:
            backend_source = project.find(rel_path)
            backend_class = _find_class(backend_source, class_name)
            if backend_source is None or backend_class is None:
                continue
            yield from self._check_backend(
                backend_source, backend_class, class_name, api
            )

    def _check_backend(
        self,
        source: SourceFile,
        backend_class: ast.ClassDef,
        class_name: str,
        api: Dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        implemented = _public_methods(backend_class)
        inherits_seam = any(
            isinstance(base, ast.Name) and base.id == "SearchState"
            for base in backend_class.bases
        )
        for name in sorted(api):
            if name in implemented:
                expected = _positional_names(api[name])
                actual = _positional_names(implemented[name])
                if actual != expected:
                    yield source.finding(
                        implemented[name], self.id,
                        f"{class_name}.{name} signature ({', '.join(actual)}) "
                        f"drifts from the SearchState seam ({', '.join(expected)})",
                    )
            elif not inherits_seam:
                yield source.finding(
                    backend_class, self.id,
                    f"{class_name} does not implement SearchState seam member "
                    f"'{name}'",
                )
        for name in sorted(implemented):
            if name not in api:
                yield source.finding(
                    implemented[name], self.id,
                    f"{class_name}.{name} is public but not part of the "
                    "SearchState seam API; add it to SearchState or make it "
                    "private",
                )


@register
class ConfigThreadingRule(Rule):
    """Every *_backend config option threaded CLI -> InferenceConfig -> engine."""

    id: ClassVar[str] = "seam-config-threading"
    family: ClassVar[str] = "seam-conformance"
    description: ClassVar[str] = (
        "each *_backend field of InferenceConfig (core/config.py) must be "
        "exposed as the matching --x-backend CLI flag, forwarded into the "
        "InferenceConfig(...) construction in cli.py, and read (config.x) "
        "by the engine side (core/engine.py or core/session.py, the "
        "per-request driver and the session that backs it), so every seam "
        "stays selectable end to end."
    )

    _CONFIG_FILE = "core/config.py"
    _CLI_FILE = "cli.py"
    #: The engine side of the seam: a backend read may live in the thin
    #: per-request driver or in the session that owns the long-lived state.
    _ENGINE_FILES: Tuple[str, ...] = ("core/engine.py", "core/session.py")

    def check_project(self, project: Project) -> Iterator[Finding]:
        config_source = project.find(self._CONFIG_FILE)
        config_class = _find_class(config_source, "InferenceConfig")
        if config_source is None or config_class is None:
            return
        fields = self._backend_fields(config_class)
        if not fields:
            return
        cli_source = project.find(self._CLI_FILE)
        engine_sources = [
            source
            for source in (project.find(path) for path in self._ENGINE_FILES)
            if source is not None
        ]
        cli_flags = _string_constants(cli_source)
        cli_config_kwargs = _call_keywords(cli_source, "InferenceConfig")
        engine_attrs: Set[str] = set()
        for source in engine_sources:
            engine_attrs |= _attribute_names(source)
        for name, node in fields:
            flag = "--" + name.replace("_", "-")
            if cli_source is not None:
                if flag not in cli_flags:
                    yield config_source.finding(
                        node, self.id,
                        f"config option '{name}' has no '{flag}' CLI flag in "
                        f"{cli_source.rel_path}",
                    )
                if name not in cli_config_kwargs:
                    yield config_source.finding(
                        node, self.id,
                        f"config option '{name}' is not forwarded into "
                        f"InferenceConfig(...) by {cli_source.rel_path}",
                    )
            if engine_sources and name not in engine_attrs:
                reader_names = " or ".join(
                    source.rel_path for source in engine_sources
                )
                yield config_source.finding(
                    node, self.id,
                    f"config option '{name}' is never read by "
                    f"{reader_names}; the seam is not wired into the "
                    "engine",
                )

    def _backend_fields(
        self, config_class: ast.ClassDef
    ) -> List[Tuple[str, ast.AST]]:
        fields: List[Tuple[str, ast.AST]] = []
        for node in config_class.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id.endswith("_backend"):
                    fields.append((node.target.id, node))
        return fields


def _string_constants(source: Optional[SourceFile]) -> Set[str]:
    constants: Set[str] = set()
    if source is None:
        return constants
    for node in source.walk():
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            constants.add(node.value)
    return constants


def _call_keywords(source: Optional[SourceFile], callee: str) -> Set[str]:
    """Keyword-argument names of every call to the given callee name."""
    keywords: Set[str] = set()
    if source is None:
        return keywords
    for node in source.walk():
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == callee:
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        keywords.add(keyword.arg)
    return keywords


def _attribute_names(source: Optional[SourceFile]) -> Set[str]:
    attributes: Set[str] = set()
    if source is None:
        return attributes
    for node in source.walk():
        if isinstance(node, ast.Attribute):
            attributes.add(node.attr)
    return attributes


__all__ = ["ConfigThreadingRule", "KernelApiRule"]
