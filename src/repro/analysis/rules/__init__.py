"""Rule families of the determinism & parity linter.

Importing this package registers every rule with
:data:`repro.analysis.framework.RULE_REGISTRY`; the families are

* :mod:`repro.analysis.rules.determinism` — hash-order iteration, raw RNG,
  wall-clock reads and unordered float accumulation;
* :mod:`repro.analysis.rules.concurrency` — fork-safety of the parallel
  backend (module state, shared-memory publication, pool task closures);
* :mod:`repro.analysis.rules.seams` — structural conformance of the
  kernel/execution/parallel backend seams across files;
* :mod:`repro.analysis.rules.obs` — purity of the observability layer
  (no randomness, no session-state reach-back, no clock mutation).
"""

from repro.analysis.rules import concurrency, determinism, obs, seams

__all__ = ["concurrency", "determinism", "obs", "seams"]
