"""Baseline systems the paper compares against.

The only baseline is :class:`~repro.baselines.alchemy.AlchemyEngine`, a
faithful-in-strategy reimplementation of how Alchemy performs MAP inference:
top-down (nested-loop) grounding entirely in main memory, followed by a
single WalkSAT over the whole ground MRF with no component awareness.
"""

from repro.baselines.alchemy import AlchemyEngine

__all__ = ["AlchemyEngine"]
