"""The Alchemy-style baseline engine.

Alchemy (the reference MLN system the paper benchmarks against) differs from
Tuffy in three ways that matter for the experiments:

* **Grounding** is top-down: nested loops over bindings in rule order, with
  no join reordering, no hash joins and no pushdown — orders of magnitude
  slower on join-heavy programs (Table 2, Table 6).
* **Memory**: the entire grounding computation, including its intermediate
  state, lives in RAM, so the peak footprint is the peak of grounding, not
  of search (Table 4).
* **Search** is one WalkSAT over the whole MRF; it keeps a single global
  best state and is unaware of components, which Theorem 3.1 shows costs it
  an exponential number of extra steps on fragmented MRFs (Table 5,
  Figures 5 and 8).

The engine exposes the same result type as :class:`~repro.core.engine.TuffyEngine`
so benchmark harnesses can compare them directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import InferenceConfig
from repro.core.program import MLNProgram
from repro.core.results import InferenceResult
from repro.grounding.result import GroundingResult
from repro.grounding.top_down import TopDownGrounder
from repro.inference.walksat import WalkSAT, WalkSATOptions
from repro.mrf.graph import MRF
from repro.utils.clock import SimulatedClock
from repro.utils.memory import MemoryModel
from repro.utils.rng import RandomSource
from repro.utils.timer import Timer


class AlchemyEngine:
    """Top-down grounding + monolithic in-memory WalkSAT."""

    def __init__(
        self,
        program: MLNProgram,
        config: Optional[InferenceConfig] = None,
    ) -> None:
        self.program = program
        base = config or InferenceConfig()
        # Alchemy has no RDBMS and no partitioning regardless of the config.
        self.config = base
        self.memory_model = MemoryModel()
        self.timer = Timer()
        self.grounding_result: Optional[GroundingResult] = None
        self.mrf: Optional[MRF] = None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def ground(self) -> GroundingResult:
        """Top-down grounding, holding all intermediate state in memory."""
        if self.grounding_result is not None:
            return self.grounding_result
        clauses = self.program.clauses()
        atoms = self.program.build_atom_registry()
        grounder = TopDownGrounder(
            merge_duplicates=self.config.merge_duplicate_clauses,
            memory_model=self.memory_model,
        )
        with self.timer.measure("grounding"):
            self.grounding_result = grounder.ground(clauses, atoms)
        return self.grounding_result

    def build_mrf(self) -> MRF:
        if self.mrf is None:
            self.mrf = MRF.from_store(self.ground().clauses)
        return self.mrf

    def run_map(self) -> InferenceResult:
        """Ground, then run a single component-blind WalkSAT."""
        config = self.config
        grounding = self.ground()
        mrf = self.build_mrf()
        clock = SimulatedClock(config.cost_model)
        options = WalkSATOptions(
            max_flips=config.max_flips,
            max_tries=config.max_tries,
            noise=config.noise,
            target_cost=config.target_cost,
            deadline_seconds=config.deadline_seconds,
            trace_label="alchemy",
            kernel_backend=config.kernel_backend,
        )
        with self.timer.measure("search"):
            outcome = WalkSAT(options, RandomSource(config.seed), clock).run(mrf)

        # Alchemy's peak RAM is the grounding peak (intermediate state) plus
        # the search state over the whole MRF.
        search_state_bytes = config.bytes_per_state_unit * mrf.size()
        peak_memory = self.memory_model.peak_bytes + search_state_bytes
        trace = outcome.trace
        trace.grounding_seconds = grounding.seconds
        return InferenceResult(
            label="alchemy",
            assignment=outcome.best_assignment,
            cost=outcome.best_cost + grounding.clauses.evidence_violation_cost,
            atoms=grounding.atoms,
            grounding=grounding,
            flips=outcome.flips,
            component_count=1,
            phase_seconds=self.timer.breakdown(),
            simulated_seconds=clock.now(),
            trace=trace,
            memory=self.memory_model.snapshot(),
            peak_memory_bytes=peak_memory,
        )
