"""Wall-clock and simulated clocks.

The paper's experiments compare systems by wall-clock time on a fixed 2011
testbed.  Re-running those experiments on arbitrary hardware would make the
absolute numbers meaningless, so the library measures two things:

* wall-clock time, for "is this implementation actually fast" sanity, and
* a *simulated* clock, advanced by deterministic amounts per modelled event
  (one WalkSAT flip, one buffer-pool page miss, one partition load), which
  reproduces the *shape* of the paper's comparisons deterministically.

Both expose the same ``now()`` / ``elapsed()`` interface so the tracing code
does not care which one it is given.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_now() -> float:
    """The monotonic wall clock, as an absolute :func:`time.perf_counter` value.

    The sanctioned wall-clock *read* for code under the ``det-wallclock``
    analysis rule — used only by observability timestamps (span starts and
    ends), never by anything that feeds results.  The value is on the
    system-wide monotonic timeline, so timestamps taken in forked worker
    processes stitch onto the parent's without translation.
    """
    return time.perf_counter()


def wall_sleep(seconds: float) -> None:
    """Block the calling thread for ``seconds`` of real time.

    The sanctioned wall-clock sleep for code under the ``det-wallclock``
    analysis rule (the deterministic core must not call ``time.*``
    directly).  It is used only for *pacing* — the scheduler's injected
    slow-worker test hook — never for anything that feeds results, so
    determinism is unaffected.
    """
    if seconds > 0:
        time.sleep(seconds)


class WallClock:
    """A clock backed by :func:`time.perf_counter`."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def now(self) -> float:
        """Seconds since the clock was created."""
        return time.perf_counter() - self._start

    def elapsed(self) -> float:
        """Alias of :meth:`now` for symmetry with :class:`SimulatedClock`."""
        return self.now()

    def restart(self) -> None:
        """Reset the origin of the clock."""
        self._start = time.perf_counter()


@dataclass
class CostModel:
    """Per-event costs (in simulated seconds) for the simulated clock.

    Defaults are chosen to mirror the relative magnitudes reported in the
    paper: an in-memory WalkSAT flip is on the order of microseconds, a
    random page access through the RDBMS layer is on the order of
    milliseconds (Appendix C.1 argues ~10 ms per random I/O), and loading a
    partition from the clause table costs per-page sequential I/O.
    """

    memory_flip: float = 1e-5
    rdbms_flip_overhead: float = 1e-2
    page_read: float = 5e-3
    page_write: float = 5e-3
    sequential_page_read: float = 5e-4
    tuple_cpu: float = 5e-8


class SimulatedClock:
    """A deterministic clock advanced explicitly by modelled events."""

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()
        self._time = 0.0
        self._events: dict[str, int] = {}

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._time

    def elapsed(self) -> float:
        """Alias of :meth:`now`."""
        return self._time

    def advance(self, seconds: float) -> None:
        """Advance the clock by an arbitrary number of simulated seconds."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._time += seconds

    def charge(self, event: str, count: int = 1) -> None:
        """Advance the clock by the cost of ``count`` events of a given kind.

        ``event`` must be the name of a :class:`CostModel` field.
        """
        unit = getattr(self.cost_model, event)
        self._time += unit * count
        self._events[event] = self._events.get(event, 0) + count

    def event_counts(self) -> dict[str, int]:
        """Return how many events of each kind have been charged."""
        return dict(self._events)

    def restart(self) -> None:
        """Reset simulated time and event counters."""
        self._time = 0.0
        self._events.clear()


@dataclass
class HybridClock:
    """Pairs a wall clock with a simulated clock.

    Inference loops charge simulated events while also exposing real elapsed
    time; experiment harnesses choose which axis to report.
    """

    simulated: SimulatedClock = field(default_factory=SimulatedClock)
    wall: WallClock = field(default_factory=WallClock)

    def now(self) -> float:
        return self.simulated.now()

    def elapsed(self) -> float:
        return self.simulated.elapsed()

    def charge(self, event: str, count: int = 1) -> None:
        self.simulated.charge(event, count)

    def wall_elapsed(self) -> float:
        return self.wall.elapsed()
