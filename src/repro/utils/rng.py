"""Seeded random-number helpers.

All stochastic components in the library (WalkSAT, SampleSAT, MC-SAT,
synthetic dataset generators) receive a :class:`RandomSource` so that every
experiment can be reproduced exactly from a single integer seed.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A thin, explicit wrapper around :class:`random.Random`.

    The wrapper exists for two reasons: it makes seeding explicit at every
    call site (no module-level global state), and it provides the handful of
    sampling primitives the inference code needs with names that match the
    paper's vocabulary (e.g. ``pick`` for choosing a violated clause).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def random(self) -> float:
        """Return a float uniformly drawn from ``[0, 1)``."""
        return self._random.random()

    def raw(self) -> random.Random:
        """The underlying :class:`random.Random`.

        Hot loops (the WalkSAT kernel) bind its methods directly to avoid
        the wrapper's extra call frame per draw; it consumes exactly the
        same stream as the named helpers, so seeded runs are unaffected.
        """
        return self._random

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly drawn from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def coin(self, probability: float = 0.5) -> bool:
        """Return ``True`` with the given probability."""
        return self._random.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        """Pick a uniformly random element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot pick from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements without replacement."""
        return self._random.sample(list(items), count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle a list in place and return it for convenience."""
        self._random.shuffle(items)
        return items

    def exponential(self, rate: float) -> float:
        """Draw from an exponential distribution with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        """Draw from a normal distribution."""
        return self._random.gauss(mean, stddev)

    def spawn(self, salt: int) -> "RandomSource":
        """Derive an independent child stream from this source.

        Children derived with different salts produce uncorrelated streams,
        which is how the parallel component search gives each worker its own
        reproducible randomness.
        """
        base = self.seed if self.seed is not None else 0
        return RandomSource((base * 1_000_003 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed!r})"


def spawn_rng(seed: Optional[int], salt: int = 0) -> RandomSource:
    """Create a :class:`RandomSource`, optionally salted.

    This is a convenience for call sites that accept ``seed: int | None`` in
    their public signature but need several independent streams internally.
    """
    source = RandomSource(seed)
    if salt:
        return source.spawn(salt)
    return source


def round_robin(groups: Sequence[Sequence[T]]) -> Iterator[T]:
    """Yield items from each group in round-robin order.

    Used by the component scheduler; kept here because it is a pure utility
    with no dependency on inference state.
    """
    iterators = [iter(group) for group in groups]
    active = list(iterators)
    while active:
        still_active = []
        for iterator in active:
            try:
                yield next(iterator)
            except StopIteration:
                continue
            still_active.append(iterator)
        active = still_active
