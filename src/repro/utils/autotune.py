"""Adaptive kernel-threshold calibration.

The auto backends pick an implementation per workload size: the
vectorized WalkSAT kernel above ``VECTOR_AUTO_MIN_CLAUSES`` clauses, its
batched greedy step above ``GREEDY_MIN_ENTRIES`` adjacency entries, the
columnar executor above ``COLUMNAR_AUTO_MIN_ROWS`` rows.  Those
crossovers used to be hardcoded numbers measured on one machine; this
module replaces them with a **cached import-time micro-probe** that
times the actual trade — a small numpy bulk call against an equivalent
pure-Python loop — on the machine the process runs on, and derives the
break-even batch size from the measured per-call overhead and per-item
costs.

The thresholds only steer the ``auto`` backend *choice*; every backend
is bit-identical in results, so a noisy probe can cost performance but
never correctness.  The probe is still bounded and overridable so CI
stays deterministic:

* ``REPRO_<NAME>=<int>`` pins one threshold exactly (e.g.
  ``REPRO_GREEDY_MIN_ENTRIES=64``);
* ``REPRO_AUTOTUNE=off`` (or ``0`` / ``no`` / ``false``) disables
  probing entirely and every threshold keeps its built-in default — the
  test suite runs in this mode (see the repo-root ``conftest.py``) so
  expectations about auto-backend selection don't depend on host speed;
* probe results are clamped to ``[default / 4, default * 4]`` and
  rounded to a power of two, so an outlier measurement can only shift a
  crossover, not invalidate it.

Each threshold is probed at most once per process (module-level cache);
call sites evaluate it at import time, keeping the hot paths free of
any autotune machinery.  Wall-clock reads are fine here — this module
lives in ``repro/utils``, outside the ``det-wallclock`` scope, and its
output never feeds a seeded result.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

_DISABLED_VALUES = ("0", "off", "no", "false")

#: Probe results per threshold name, so repeated imports (or repeated
#: threshold() calls in tests) never re-time.
_CACHE: Dict[str, int] = {}

#: Shared probe measurements (per-item python cost, per-call numpy
#: overhead), cached so the three thresholds time the machine once.
_MEASURED: Dict[str, float] = {}

#: Loop size used by the probes: big enough that per-item costs
#: dominate timer resolution, small enough to keep import fast (<1 ms).
_PROBE_SIZE = 256

#: Timing repetitions; best-of guards against scheduler noise.
_PROBE_REPEATS = 5


def autotune_enabled() -> bool:
    """Whether micro-probing is enabled for this process."""
    return os.environ.get("REPRO_AUTOTUNE", "on").lower() not in _DISABLED_VALUES


def _best_time(operation: Callable[[], object]) -> float:
    """Best-of-N wall seconds for one call of ``operation``."""
    best = float("inf")
    for _ in range(_PROBE_REPEATS):
        start = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _measure_crossover() -> Optional[float]:
    """Break-even batch size where a numpy bulk op beats a Python loop.

    Model: a bulk call costs ``overhead + size * per_item_np``; the
    scalar loop costs ``size * per_item_py``.  The crossover is where
    they meet: ``overhead / (per_item_py - per_item_np)``.  Returns
    ``None`` when numpy is missing or the measurement degenerates (the
    loop not measurably slower per item), in which case callers keep
    their defaults.
    """
    try:
        import numpy
    except ImportError:
        return None
    values = list(range(_PROBE_SIZE))
    source = numpy.arange(_PROBE_SIZE, dtype=numpy.int64)
    out = numpy.empty(_PROBE_SIZE, dtype=numpy.int64)

    def python_loop() -> int:
        total = 0
        for value in values:
            total += value * 2 + 1
        return total

    def numpy_bulk() -> None:
        numpy.add(source, source, out=out)
        numpy.add(out, 1, out=out)

    per_item_py = _best_time(python_loop) / _PROBE_SIZE
    bulk_seconds = _best_time(numpy_bulk)
    # At probe size the bulk call is dominated by fixed per-call
    # overhead; treating it all as overhead biases the crossover up,
    # which errs toward the predictable scalar path on borderline sizes.
    if per_item_py <= 0.0:
        return None
    return bulk_seconds / per_item_py


def _round_power_of_two(value: float) -> int:
    """The power of two nearest to ``value`` (geometrically)."""
    if value <= 1.0:
        return 1
    power = 1
    while power * power * 2 <= value * value:  # compare without math.log
        power *= 2
    return power


def threshold(name: str, default: int) -> int:
    """Resolve one auto-backend crossover threshold.

    Resolution order: explicit ``REPRO_<name>`` env override, then the
    built-in ``default`` when autotuning is off (or the probe is
    inconclusive), else the measured crossover scaled by the ratio of
    the measured break-even to the reference machine's — clamped to
    ``[default / 4, default * 4]`` and rounded to a power of two.
    """
    override = os.environ.get(f"REPRO_{name}")
    if override is not None:
        pinned = int(override)
        if pinned <= 0:
            raise ValueError(f"REPRO_{name} must be positive, got {pinned}")
        return pinned
    if not autotune_enabled():
        return default
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    crossover = _MEASURED.get("crossover")
    if crossover is None:
        measured = _measure_crossover()
        crossover = -1.0 if measured is None else measured
        _MEASURED["crossover"] = crossover
    if crossover <= 0.0:
        resolved = default
    else:
        # The defaults already encode each call site's relative per-item
        # work (the greedy gather is heavier per entry than a row
        # filter); scale them by how this machine's generic break-even
        # compares to the reference crossover the defaults were measured
        # at (~128 elements), keeping the call sites' relative order.
        scaled = default * (crossover / 128.0)
        resolved = min(max(_round_power_of_two(scaled), default // 4), default * 4)
        resolved = max(resolved, 1)
    _CACHE[name] = resolved
    return resolved
