"""Memory accounting.

The paper's Table 4 and Table 5 compare peak RAM usage of Alchemy (which must
hold the grounding intermediate state in memory) against Tuffy (which only
needs memory for the search phase, and with partitioning only for the largest
batch of components).  Measuring a Python process RSS would mostly reflect
interpreter overhead, so the library models memory analytically:

* :func:`deep_sizeof` gives a recursive ``sys.getsizeof`` estimate of actual
  Python objects (used in tests and for sanity checks), and
* :class:`MemoryModel` charges logical bytes per atom, per ground-clause
  literal and per intermediate grounding tuple, which is what the paper's
  footprint comparison is actually about.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Set


def deep_sizeof(obj: Any, _seen: Set[int] | None = None) -> int:
    """Recursively estimate the in-memory size of a Python object in bytes.

    Cycles are handled via an id-set; shared sub-objects are counted once.
    """
    seen = _seen if _seen is not None else set()
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            deep_sizeof(key, seen) + deep_sizeof(value, seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            deep_sizeof(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size


@dataclass
class MemoryReport:
    """A snapshot of modelled memory usage, in bytes, per logical category."""

    categories: Dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        return sum(self.categories.values())

    def megabytes(self) -> float:
        return self.total() / (1024.0 * 1024.0)

    def merge(self, other: "MemoryReport") -> "MemoryReport":
        merged = dict(self.categories)
        for key, value in other.categories.items():
            merged[key] = merged.get(key, 0) + value
        return MemoryReport(merged)

    def __getitem__(self, key: str) -> int:
        return self.categories.get(key, 0)


@dataclass
class MemoryModel:
    """Analytic per-object byte costs used to model RAM footprints.

    The constants approximate the per-record costs of a compact C++
    implementation (as Alchemy is) rather than of CPython objects; what
    matters for reproducing the paper is that the *same* constants are used
    for every system being compared, so the ratios are meaningful.
    """

    bytes_per_atom: int = 16
    bytes_per_literal: int = 8
    bytes_per_clause: int = 32
    bytes_per_intermediate_tuple: int = 48
    bytes_per_evidence_tuple: int = 24

    def __post_init__(self) -> None:
        self._peak = 0
        self._current: Dict[str, int] = {}

    def charge(self, category: str, amount_bytes: int) -> None:
        """Add modelled bytes under a category and update the peak."""
        self._current[category] = self._current.get(category, 0) + amount_bytes
        self._update_peak()

    def release(self, category: str) -> None:
        """Release all modelled bytes under a category."""
        self._current.pop(category, None)

    def charge_atoms(self, count: int, category: str = "atoms") -> None:
        self.charge(category, count * self.bytes_per_atom)

    def charge_clauses(
        self, clause_count: int, literal_count: int, category: str = "clauses"
    ) -> None:
        self.charge(
            category,
            clause_count * self.bytes_per_clause
            + literal_count * self.bytes_per_literal,
        )

    def charge_intermediate(self, tuple_count: int, category: str = "grounding") -> None:
        self.charge(category, tuple_count * self.bytes_per_intermediate_tuple)

    def snapshot(self) -> MemoryReport:
        return MemoryReport(dict(self._current))

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def peak_megabytes(self) -> float:
        return self._peak / (1024.0 * 1024.0)

    @property
    def current_bytes(self) -> int:
        return sum(self._current.values())

    def reset(self) -> None:
        self._peak = 0
        self._current.clear()

    def _update_peak(self) -> None:
        self._peak = max(self._peak, self.current_bytes)


def clause_table_bytes(literal_counts: Iterable[int], model: MemoryModel | None = None) -> int:
    """Size of a ground clause table given the literal count of each clause."""
    model = model or MemoryModel()
    total = 0
    count = 0
    for literals in literal_counts:
        total += model.bytes_per_clause + literals * model.bytes_per_literal
        count += 1
    return total
