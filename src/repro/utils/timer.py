"""Lightweight timing helpers used by benchmarks and the engine facade."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock time across multiple start/stop cycles."""

    total: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._started_at
        self.total += delta
        self._started_at = None
        return delta

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Context manager form: ``with stopwatch.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class Timer:
    """A named collection of stopwatches (one per pipeline phase).

    The engine uses one Timer with phases such as ``"grounding"``,
    ``"component_detection"``, ``"partitioning"``, ``"loading"`` and
    ``"search"`` so results can report a per-phase breakdown, matching the
    paper's separation of grounding time from search time.
    """

    phases: Dict[str, Stopwatch] = field(default_factory=dict)

    def phase(self, name: str) -> Stopwatch:
        """Return (creating if necessary) the stopwatch for a phase."""
        if name not in self.phases:
            self.phases[name] = Stopwatch()
        return self.phases[name]

    @contextmanager
    def measure(self, name: str) -> Iterator[Stopwatch]:
        watch = self.phase(name)
        with watch.measure():
            yield watch

    def seconds(self, name: str) -> float:
        """Elapsed seconds recorded for a phase (0.0 if never measured)."""
        watch = self.phases.get(name)
        return watch.total if watch else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Return ``{phase: seconds}`` for every measured phase."""
        return {name: watch.total for name, watch in self.phases.items()}

    def total(self) -> float:
        return sum(watch.total for watch in self.phases.values())
