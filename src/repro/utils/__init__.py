"""Shared utilities: RNG, clocks, timers, memory accounting and logging.

These are small infrastructure pieces used across every other subpackage.
They exist so that all experiments are reproducible (seeded RNG everywhere)
and so that the paper's resource-oriented claims (I/O counts, flipping rates,
memory footprints) can be measured with deterministic, simulated quantities
in addition to wall-clock time.
"""

from repro.utils.clock import SimulatedClock, WallClock
from repro.utils.memory import MemoryModel, MemoryReport, deep_sizeof
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.timer import Stopwatch, Timer

__all__ = [
    "MemoryModel",
    "MemoryReport",
    "RandomSource",
    "SimulatedClock",
    "Stopwatch",
    "Timer",
    "WallClock",
    "deep_sizeof",
    "spawn_rng",
]
