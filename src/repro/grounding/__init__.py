"""Grounding: from a weighted first-order program to a ground MRF.

Grounding instantiates every MLN clause over the constants of the domain,
prunes instantiations that the evidence already satisfies (Appendix A.3 of
the paper), and produces a table of *ground clauses* over *atoms* — the
weighted SAT problem that the search phase minimises.

Two grounders are provided:

* :class:`~repro.grounding.bottom_up.BottomUpGrounder` — Tuffy's approach:
  each clause is compiled (Algorithm 2) into a relational query over the
  per-predicate atom tables and executed by the :mod:`repro.rdbms` engine,
  so join ordering, join algorithms and predicate pushdown are chosen by
  the optimizer.  Each query runs on the engine's resolved *execution
  backend* (``auto | row | columnar``); on the columnar backend, query
  results stay as numpy columns end to end — per-literal evidence outcomes
  are evaluated over whole aid/truth columns at once and the surviving
  signed-literal rows are bulk-appended through
  :meth:`~repro.grounding.clause_table.GroundClauseStore.add_batch`.  Both
  backends produce bit-identical :class:`~repro.grounding.result.GroundingResult`s
  (``tests/test_grounding_columnar_parity.py``).
* :class:`~repro.grounding.top_down.TopDownGrounder` — the Alchemy-style
  baseline: nested loops over variable bindings with per-binding lookups.

Both produce identical sets of ground clauses (a property the test suite
checks on randomly generated programs), differing only in cost.
"""

from repro.grounding.atoms import AtomRegistry, AtomRecord
from repro.grounding.bottom_up import BottomUpGrounder
from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.grounding.compiler import ClauseCompilation, GroundingCompiler
from repro.grounding.lazy import active_closure
from repro.grounding.result import GroundingResult
from repro.grounding.top_down import TopDownGrounder

__all__ = [
    "AtomRecord",
    "AtomRegistry",
    "BottomUpGrounder",
    "ClauseCompilation",
    "GroundClause",
    "GroundClauseStore",
    "GroundingCompiler",
    "GroundingResult",
    "TopDownGrounder",
    "active_closure",
]
