"""Ground clauses and the clause store (the paper's table ``C(cid, lits, weight)``).

A ground clause is a weighted disjunction over *signed atom ids*: ``+aid``
means the clause contains the atom positively, ``-aid`` negatively.  Only
atoms whose truth value is unknown appear; literals already decided by the
evidence are resolved at grounding time (a satisfied literal removes the
whole clause, an unsatisfied one is dropped from the disjunction).

Duplicate ground clauses over the same literal set are merged by summing
their weights, which is what both Alchemy and Tuffy do, and which keeps the
search cost function identical while shrinking the clause table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.database import Database
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType

CLAUSE_TABLE_NAME = "ground_clauses"


@dataclass
class GroundClause:
    """A single ground clause.

    ``literals`` is a tuple of non-zero signed atom ids; ``weight`` may be
    negative (the clause is violated when *satisfied*) or infinite (hard).
    ``source`` names the first-order rule this clause was instantiated from.
    """

    clause_id: int
    literals: Tuple[int, ...]
    weight: float
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if any(literal == 0 for literal in self.literals):
            raise ValueError("literal ids must be non-zero signed integers")

    @property
    def is_hard(self) -> bool:
        return math.isinf(self.weight)

    @property
    def atom_ids(self) -> Tuple[int, ...]:
        return tuple(abs(literal) for literal in self.literals)

    def is_satisfied(self, assignment: Sequence[bool]) -> bool:
        """Whether the clause is satisfied under a 1-indexed truth assignment.

        ``assignment`` is indexable by atom id (index 0 is unused).
        """
        for literal in self.literals:
            value = assignment[abs(literal)]
            if (literal > 0 and value) or (literal < 0 and not value):
                return True
        return False

    def is_violated(self, assignment: Sequence[bool]) -> bool:
        """Violation in the paper's sense: w>0 and unsatisfied, or w<0 and satisfied."""
        satisfied = self.is_satisfied(assignment)
        if self.weight >= 0:
            return not satisfied
        return satisfied

    def violation_cost(self, assignment: Sequence[bool]) -> float:
        return abs(self.weight) if self.is_violated(assignment) else 0.0

    def canonical_key(self) -> Tuple[int, ...]:
        """A key identifying clauses with the same literal set."""
        return tuple(sorted(set(self.literals)))


class GroundClauseStore:
    """An append-only collection of ground clauses with duplicate merging."""

    def __init__(self, merge_duplicates: bool = True) -> None:
        self.merge_duplicates = merge_duplicates
        self._clauses: List[GroundClause] = []
        self._by_key: Dict[Tuple[int, ...], int] = {}
        self.evidence_violation_cost = 0.0
        self.satisfied_by_evidence = 0
        self.tautologies = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(
        self,
        literals: Sequence[int],
        weight: float,
        source: Optional[str] = None,
    ) -> Optional[GroundClause]:
        """Add a ground clause, merging with an existing identical one.

        Returns the stored clause, or ``None`` when the clause was empty
        (fully decided by evidence) and only affected the constant cost.
        """
        # Repeated identical literals in a disjunction are redundant; dropping
        # them keeps the cost function identical and makes the stored clause
        # independent of the order groundings were produced in.
        literals = tuple(dict.fromkeys(literals))
        if not literals:
            # An empty clause cannot be satisfied by any assignment: if its
            # weight is positive it contributes a constant violation cost.
            if weight > 0 and not math.isinf(weight):
                self.evidence_violation_cost += weight
            return None
        atom_ids = {abs(literal) for literal in literals}
        if len(atom_ids) < len(set(literals)):
            # The clause contains both an atom and its negation: it is a
            # tautology, satisfied in every world, and carries no information.
            self.tautologies += 1
            return None
        if self.merge_duplicates and not math.isinf(weight):
            key = tuple(sorted(set(literals)))
            existing_index = self._by_key.get(key)
            if existing_index is not None:
                existing = self._clauses[existing_index]
                if not existing.is_hard:
                    merged = GroundClause(
                        existing.clause_id,
                        existing.literals,
                        existing.weight + weight,
                        existing.source,
                    )
                    self._clauses[existing_index] = merged
                    return merged
        clause = GroundClause(len(self._clauses) + 1, literals, weight, source)
        self._clauses.append(clause)
        if self.merge_duplicates and not math.isinf(weight):
            self._by_key[clause.canonical_key()] = len(self._clauses) - 1
        return clause

    def record_satisfied_by_evidence(self) -> None:
        self.satisfied_by_evidence += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[GroundClause]:
        return iter(self._clauses)

    def __getitem__(self, index: int) -> GroundClause:
        return self._clauses[index]

    def clauses(self) -> List[GroundClause]:
        return list(self._clauses)

    def atom_ids(self) -> List[int]:
        """All distinct atom ids referenced by any clause, sorted."""
        seen = set()
        for clause in self._clauses:
            seen.update(clause.atom_ids)
        return sorted(seen)

    def total_literals(self) -> int:
        return sum(len(clause.literals) for clause in self._clauses)

    def hard_clause_count(self) -> int:
        return sum(1 for clause in self._clauses if clause.is_hard)

    # ------------------------------------------------------------------
    # RDBMS persistence
    # ------------------------------------------------------------------

    @staticmethod
    def table_schema() -> TableSchema:
        """Schema of the clause table ``C(cid, lits, weight)`` (paper §3.1)."""
        return TableSchema.of(
            ("cid", ColumnType.INTEGER),
            ("lits", ColumnType.TEXT),
            ("weight", ColumnType.REAL),
            ("source", ColumnType.TEXT),
        )

    def store_in_database(self, database: Database, table_name: str = CLAUSE_TABLE_NAME) -> None:
        """Materialise the clause store into an RDBMS table."""
        if not database.has_table(table_name):
            database.create_table(table_name, self.table_schema())
        else:
            database.table(table_name).truncate()
        rows = [
            (
                clause.clause_id,
                " ".join(str(literal) for literal in clause.literals),
                1e300 if clause.is_hard else clause.weight,
                clause.source or "",
            )
            for clause in self._clauses
        ]
        database.bulk_load(table_name, rows)

    @classmethod
    def load_from_database(
        cls, database: Database, table_name: str = CLAUSE_TABLE_NAME
    ) -> "GroundClauseStore":
        """Re-read a clause store previously written with :meth:`store_in_database`."""
        store = cls(merge_duplicates=False)
        table = database.table(table_name)
        cid_pos = table.schema.position("cid")
        lits_pos = table.schema.position("lits")
        weight_pos = table.schema.position("weight")
        source_pos = table.schema.position("source")
        for row in table.scan(charge_io=True):
            literals = tuple(int(token) for token in row[lits_pos].split())
            weight = row[weight_pos]
            if weight >= 1e300:
                weight = math.inf
            store._clauses.append(
                GroundClause(row[cid_pos], literals, weight, row[source_pos] or None)
            )
        return store
