"""Ground clauses and the clause store (the paper's table ``C(cid, lits, weight)``).

A ground clause is a weighted disjunction over *signed atom ids*: ``+aid``
means the clause contains the atom positively, ``-aid`` negatively.  Only
atoms whose truth value is unknown appear; literals already decided by the
evidence are resolved at grounding time (a satisfied literal removes the
whole clause, an unsatisfied one is dropped from the disjunction).

Duplicate ground clauses over the same literal set are merged by summing
their weights, which is what both Alchemy and Tuffy do, and which keeps the
search cost function identical while shrinking the clause table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdbms.database import Database
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType

try:  # gated dependency: add_batch has a vectorized path for numpy inputs
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

CLAUSE_TABLE_NAME = "ground_clauses"


@dataclass(slots=True)
class GroundClause:
    """A single ground clause.

    ``literals`` is a tuple of non-zero signed atom ids; ``weight`` may be
    negative (the clause is violated when *satisfied*) or infinite (hard).
    ``source`` names the first-order rule this clause was instantiated from.
    Slotted: grounding materialises these by the hundreds of thousands.
    """

    clause_id: int
    literals: Tuple[int, ...]
    weight: float
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if any(literal == 0 for literal in self.literals):
            raise ValueError("literal ids must be non-zero signed integers")

    @property
    def is_hard(self) -> bool:
        return math.isinf(self.weight)

    @property
    def atom_ids(self) -> Tuple[int, ...]:
        return tuple(abs(literal) for literal in self.literals)

    def is_satisfied(self, assignment: Sequence[bool]) -> bool:
        """Whether the clause is satisfied under a 1-indexed truth assignment.

        ``assignment`` is indexable by atom id (index 0 is unused).
        """
        for literal in self.literals:
            value = assignment[abs(literal)]
            if (literal > 0 and value) or (literal < 0 and not value):
                return True
        return False

    def is_violated(self, assignment: Sequence[bool]) -> bool:
        """Violation in the paper's sense: w>0 and unsatisfied, or w<0 and satisfied."""
        satisfied = self.is_satisfied(assignment)
        if self.weight >= 0:
            return not satisfied
        return satisfied

    def violation_cost(self, assignment: Sequence[bool]) -> float:
        return abs(self.weight) if self.is_violated(assignment) else 0.0


class GroundClauseStore:
    """An append-only collection of ground clauses with duplicate merging."""

    def __init__(self, merge_duplicates: bool = True) -> None:
        self.merge_duplicates = merge_duplicates
        self._clauses: List[GroundClause] = []
        self._by_key: Dict[Tuple[int, ...], int] = {}
        self.evidence_violation_cost = 0.0
        self.satisfied_by_evidence = 0
        self.tautologies = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(
        self,
        literals: Sequence[int],
        weight: float,
        source: Optional[str] = None,
    ) -> Optional[GroundClause]:
        """Add a ground clause, merging with an existing identical one.

        Returns the stored clause, or ``None`` when the clause was empty
        (fully decided by evidence) and only affected the constant cost.
        """
        # Repeated identical literals in a disjunction are redundant; dropping
        # them keeps the cost function identical and makes the stored clause
        # independent of the order groundings were produced in.
        literals = tuple(dict.fromkeys(literals))
        if not literals:
            # An empty clause cannot be satisfied by any assignment: if its
            # weight is positive it contributes a constant violation cost.
            if weight > 0 and not math.isinf(weight):
                self.evidence_violation_cost += weight
            return None
        if len({abs(literal) for literal in literals}) < len(literals):
            # The clause contains both an atom and its negation: it is a
            # tautology, satisfied in every world, and carries no information.
            self.tautologies += 1
            return None
        if self.merge_duplicates and not math.isinf(weight):
            # ``literals`` is already duplicate-free, so sorting it gives the
            # canonical key directly.
            key = tuple(sorted(literals))
            existing_index = self._by_key.get(key)
            if existing_index is not None:
                existing = self._clauses[existing_index]
                if not existing.is_hard:
                    existing.weight += weight
                    return existing
            clause = GroundClause(len(self._clauses) + 1, literals, weight, source)
            self._clauses.append(clause)
            self._by_key[key] = len(self._clauses) - 1
            return clause
        clause = GroundClause(len(self._clauses) + 1, literals, weight, source)
        self._clauses.append(clause)
        return clause

    def add_batch(
        self,
        flat_literals: Sequence[int],
        row_lengths: Sequence[int],
        weight: float,
        source: Optional[str] = None,
    ) -> int:
        """Add many ground clauses of one first-order clause at once.

        ``flat_literals`` holds the signed literals of every clause
        back-to-back; ``row_lengths`` gives each clause's literal count, in
        order.  Semantics — duplicate merging, weight summing, hard-clause
        handling, tautology/empty-clause accounting and clause ordering —
        are exactly those of calling :meth:`add` once per row (the batched
        grounding consumer relies on this; the test suite enforces it).
        Returns the number of rows that stored or merged a clause
        (i.e. for which :meth:`add` returned a clause).

        When the inputs are numpy arrays, per-row canonicalisation
        (literal dedup, tautology detection, duplicate-row grouping) runs
        vectorized and the Python loop touches only distinct clauses.
        Weight merging remains *sequential addition* (never a
        count-times-weight product), so results stay bit-identical to
        repeated ``add`` calls.
        """
        if np is not None and isinstance(flat_literals, np.ndarray):
            return self._add_batch_arrays(
                flat_literals, np.asarray(row_lengths, dtype=np.int64), weight, source
            )
        # Inlined fast path of :meth:`add`: the weight classification and
        # attribute lookups are hoisted out of the per-row loop (the batch
        # shares one weight/source).  tests/test_clause_store_batch.py
        # cross-checks this loop against repeated ``add`` calls.
        if sum(row_lengths) != len(flat_literals):
            raise ValueError(
                f"row_lengths cover {sum(row_lengths)} literals, got {len(flat_literals)}"
            )
        clauses = self._clauses
        by_key = self._by_key
        hard = math.isinf(weight)
        merge = self.merge_duplicates and not hard
        charge_empty = weight > 0 and not hard
        stored = 0
        offset = 0
        for length in row_lengths:
            end = offset + length
            literals = tuple(dict.fromkeys(flat_literals[offset:end]))
            offset = end
            if not literals:
                if charge_empty:
                    self.evidence_violation_cost += weight
                continue
            if len({abs(literal) for literal in literals}) < len(literals):
                self.tautologies += 1
                continue
            if merge:
                key = tuple(sorted(literals))
                existing_index = by_key.get(key)
                if existing_index is not None:
                    existing = clauses[existing_index]
                    if not existing.is_hard:
                        existing.weight += weight
                        stored += 1
                        continue
                clauses.append(GroundClause(len(clauses) + 1, literals, weight, source))
                by_key[key] = len(clauses) - 1
            else:
                clauses.append(GroundClause(len(clauses) + 1, literals, weight, source))
            stored += 1
        return stored

    def _add_batch_arrays(
        self,
        flat: "np.ndarray",
        lengths: "np.ndarray",
        weight: float,
        source: Optional[str],
    ) -> int:
        """Vectorized :meth:`add_batch` over numpy inputs.

        Canonicalisation (intra-row literal dedup, tautology detection,
        duplicate-row grouping) runs on a 0-padded ``(rows, max_len)``
        literal matrix; the Python loop then visits each *distinct* clause
        once, in first-occurrence order — which assigns the same clause ids
        and performs the same sequential weight additions as row-at-a-time
        :meth:`add` calls.
        """
        row_count = len(lengths)
        if int(lengths.sum()) != len(flat):
            raise ValueError(
                f"row_lengths cover {int(lengths.sum())} literals, got {len(flat)}"
            )
        if row_count == 0:
            return 0
        hard = math.isinf(weight)
        merge = self.merge_duplicates and not hard
        alive = lengths > 0
        empty_rows = row_count - int(alive.sum())
        if empty_rows and weight > 0 and not hard:
            cost = self.evidence_violation_cost
            for _ in range(empty_rows):
                cost += weight
            self.evidence_violation_cost = cost
        if empty_rows == row_count:
            return 0

        max_len = int(lengths.max())
        offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
        padded = np.zeros((row_count, max_len), dtype=np.int64)
        padded[
            np.repeat(np.arange(row_count), lengths),
            np.arange(len(flat)) - np.repeat(offsets, lengths),
        ] = flat
        # Intra-row duplicate literals (0 is the pad, never a literal):
        # zero out repeats until every sorted row is repeat-free.
        canonical = np.sort(padded, axis=1)
        has_duplicates = np.zeros(row_count, dtype=bool)
        while True:
            repeats = (canonical[:, 1:] == canonical[:, :-1]) & (canonical[:, 1:] != 0)
            repeat_rows = repeats.any(axis=1)
            if not repeat_rows.any():
                break
            has_duplicates |= repeat_rows
            canonical[:, 1:][repeats] = 0
            canonical = np.sort(canonical, axis=1)
        # Tautologies: an atom surviving with both signs.
        abs_sorted = np.sort(np.abs(canonical), axis=1)
        tautological = (
            (abs_sorted[:, 1:] == abs_sorted[:, :-1]) & (abs_sorted[:, 1:] != 0)
        ).any(axis=1) & alive
        self.tautologies += int(tautological.sum())
        keep = alive & ~tautological
        kept_rows = np.nonzero(keep)[0]
        if len(kept_rows) == 0:
            return 0

        flat_list = flat.tolist()
        offsets_list = offsets.tolist()
        lengths_list = lengths.tolist()
        clauses = self._clauses

        def row_literals(row: int) -> Tuple[int, ...]:
            start = offsets_list[row]
            literals = tuple(flat_list[start : start + lengths_list[row]])
            if has_duplicates[row]:
                literals = tuple(dict.fromkeys(literals))
            return literals

        if not merge:
            for row in kept_rows.tolist():
                clauses.append(
                    GroundClause(len(clauses) + 1, row_literals(row), weight, source)
                )
            return len(kept_rows)

        # Group identical canonical rows: the padded sorted rows are an
        # injective encoding of the literal sets (zeros are pads).
        if max_len == 1:
            group_ids = canonical[kept_rows, 0]
        else:
            from repro.rdbms.column_batch import composite_codes

            key_matrix = canonical[kept_rows]
            group_ids = composite_codes(
                [key_matrix[:, column] for column in range(max_len)]
            )
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        boundary = np.empty(len(sorted_ids), dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_ids[1:] != sorted_ids[:-1]
        group_starts = np.nonzero(boundary)[0]
        group_counts = np.diff(np.append(group_starts, len(sorted_ids)))
        # Stable sort keeps each group's rows ascending, so the run head is
        # the group's first occurrence; process groups in that global order.
        first_rows = kept_rows[order[group_starts]]
        by_key = self._by_key
        for group in np.argsort(first_rows, kind="stable").tolist():
            row = int(first_rows[group])
            count = int(group_counts[group])
            literals = row_literals(row)
            key = tuple(sorted(literals))
            existing_index = by_key.get(key)
            if existing_index is not None:
                existing = clauses[existing_index]
                if not existing.is_hard:
                    merged_weight = existing.weight
                    for _ in range(count):
                        merged_weight += weight
                    existing.weight = merged_weight
                    continue
            clause = GroundClause(len(clauses) + 1, literals, weight, source)
            if count > 1:
                merged_weight = clause.weight
                for _ in range(count - 1):
                    merged_weight += weight
                clause.weight = merged_weight
            clauses.append(clause)
            by_key[key] = len(clauses) - 1
        return len(kept_rows)

    def record_satisfied_by_evidence(self, count: int = 1) -> None:
        self.satisfied_by_evidence += count

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[GroundClause]:
        return iter(self._clauses)

    def __getitem__(self, index: int) -> GroundClause:
        return self._clauses[index]

    def clauses(self) -> List[GroundClause]:
        return list(self._clauses)

    def atom_ids(self) -> List[int]:
        """All distinct atom ids referenced by any clause, sorted."""
        seen = set()
        for clause in self._clauses:
            seen.update(clause.atom_ids)
        return sorted(seen)

    def total_literals(self) -> int:
        return sum(len(clause.literals) for clause in self._clauses)

    def hard_clause_count(self) -> int:
        return sum(1 for clause in self._clauses if clause.is_hard)

    # ------------------------------------------------------------------
    # RDBMS persistence
    # ------------------------------------------------------------------

    @staticmethod
    def table_schema() -> TableSchema:
        """Schema of the clause table ``C(cid, lits, weight)`` (paper §3.1)."""
        return TableSchema.of(
            ("cid", ColumnType.INTEGER),
            ("lits", ColumnType.TEXT),
            ("weight", ColumnType.REAL),
            ("source", ColumnType.TEXT),
        )

    def store_in_database(self, database: Database, table_name: str = CLAUSE_TABLE_NAME) -> None:
        """Materialise the clause store into an RDBMS table."""
        if not database.has_table(table_name):
            database.create_table(table_name, self.table_schema())
        else:
            database.table(table_name).truncate()
        rows = [
            (
                clause.clause_id,
                " ".join(map(str, clause.literals)),
                1e300 if clause.is_hard else float(clause.weight),
                clause.source or "",
            )
            for clause in self._clauses
        ]
        # The rows above are constructed schema-exact (INTEGER, TEXT, REAL,
        # TEXT), so take the validation-free load path; invalidate statistics
        # like Database.bulk_load would.
        database.table(table_name).bulk_load_validated(rows)
        database.statistics.invalidate(table_name)

    @classmethod
    def load_from_database(
        cls, database: Database, table_name: str = CLAUSE_TABLE_NAME
    ) -> "GroundClauseStore":
        """Re-read a clause store previously written with :meth:`store_in_database`."""
        store = cls(merge_duplicates=False)
        table = database.table(table_name)
        cid_pos = table.schema.position("cid")
        lits_pos = table.schema.position("lits")
        weight_pos = table.schema.position("weight")
        source_pos = table.schema.position("source")
        for row in table.scan(charge_io=True):
            literals = tuple(int(token) for token in row[lits_pos].split())
            weight = row[weight_pos]
            if weight >= 1e300:
                weight = math.inf
            store._clauses.append(
                GroundClause(row[cid_pos], literals, weight, row[source_pos] or None)
            )
        return store
