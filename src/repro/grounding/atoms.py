"""The atom registry: ground atoms, their ids and their evidence truth values.

Every ground atom (a possible instantiation of a predicate) receives a
globally unique positive integer id.  Ids are positive so that a *signed*
atom id can encode a ground literal: ``+aid`` for a positive literal,
``-aid`` for a negated one — the same convention the paper's clause table
uses for its ``lits`` array.

An atom carries a three-valued truth attribute:

* ``True`` / ``False`` — fixed by the evidence;
* ``None`` — unknown; these are the random variables the search flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.logic.predicates import GroundAtom, Predicate


@dataclass
class AtomRecord:
    """One registered atom: its id, identity and evidence truth value."""

    atom_id: int
    atom: GroundAtom
    truth: Optional[bool]

    @property
    def is_evidence(self) -> bool:
        return self.truth is not None

    @property
    def is_query(self) -> bool:
        return self.truth is None


class AtomRegistry:
    """Assigns dense ids to ground atoms and records evidence truth values.

    The registry carries a **version counter**, bumped whenever its
    logical contents change (a new atom, or a truth value moving from
    unknown to fixed).  Consumers that materialise derived state from the
    registry — the bottom-up grounder's atom tables and, through them, the
    columnar engine's encoded-column cache — key their caches on
    ``(identity_token, version)`` so repeated ``ground()`` calls over an
    unchanged registry skip the rebuild entirely.

    Alongside the global counter the registry keeps one version counter
    **per predicate**, bumped only when that predicate's atoms or truth
    values change.  This is the delta-grounding seam: an evidence delta on
    one predicate invalidates only the atom tables and clause groundings
    that touch it (see :class:`~repro.grounding.bottom_up.BottomUpGrounder`),
    everything else replays from cache.
    """

    _next_token = 0

    def __init__(self) -> None:
        self._records: List[AtomRecord] = []
        self._by_key: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._version = 0
        self._predicate_versions: Dict[str, int] = {}
        #: Closed-world atoms whose ``False`` is the retraction default,
        #: not asserted evidence — re-registering them with a truth value
        #: is a re-assertion, never a conflict.
        self._defaulted: set = set()
        AtomRegistry._next_token += 1
        self._identity_token = AtomRegistry._next_token

    @property
    def version(self) -> int:
        """Monotone counter of logical mutations (new atoms, truth changes)."""
        return self._version

    def predicate_version(self, predicate_name: str) -> int:
        """Monotone counter of mutations touching one predicate's atoms."""
        return self._predicate_versions.get(predicate_name, 0)

    def predicate_versions(
        self, predicate_names: Iterable[str]
    ) -> Dict[str, int]:
        """Snapshot of the per-predicate counters for the named predicates."""
        return {name: self.predicate_version(name) for name in predicate_names}

    def _bump(self, predicate_name: str) -> None:
        self._version += 1
        self._predicate_versions[predicate_name] = (
            self._predicate_versions.get(predicate_name, 0) + 1
        )

    @property
    def identity_token(self) -> int:
        """A process-unique id for this registry (never reused, unlike ``id()``)."""
        return self._identity_token

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, atom: GroundAtom, truth: Optional[bool] = None) -> int:
        """Register an atom (idempotently) and return its id.

        Registering an already-known atom with a non-``None`` truth value
        updates the stored truth value; conflicting evidence (True vs False
        for the same atom) raises ``ValueError``.
        """
        key = (atom.predicate.name, atom.argument_values())
        atom_id = self._by_key.get(key)
        if atom_id is None:
            atom_id = len(self._records) + 1
            self._records.append(AtomRecord(atom_id, atom, truth))
            self._by_key[key] = atom_id
            self._bump(atom.predicate.name)
            return atom_id
        record = self._records[atom_id - 1]
        if truth is not None:
            retracted = atom_id in self._defaulted
            if record.truth is not None and record.truth != truth and not retracted:
                raise ValueError(f"conflicting evidence for atom {atom}")
            if record.truth != truth or retracted:
                record.truth = truth
                self._defaulted.discard(atom_id)
                self._bump(atom.predicate.name)
        return atom_id

    def register_evidence(self, atom: GroundAtom, truth: bool) -> int:
        return self.register(atom, truth)

    def remove_evidence(self, atom: GroundAtom) -> int:
        """Retract an evidence atom's truth value, keeping its id stable.

        An open-world predicate's atom reverts to ``truth = None`` — it
        becomes a search variable again.  A closed-world predicate's atom
        reverts to ``truth = False``: unlisted atoms of a closed-world
        predicate are implicitly false (that is how the grounders treat
        them — they only ever see the registered rows), so retraction
        means falling back to the closed-world default, never to unknown
        (``None`` would illegally create a query variable for a predicate
        that cannot have one).  The predicate's version counter is bumped
        either way, so the next grounding reloads its atom table and
        re-runs exactly the clauses reading it.
        """
        atom_id = self.lookup(atom.predicate.name, atom.argument_values())
        if atom_id is None:
            raise KeyError(f"cannot retract unregistered atom {atom}")
        record = self._records[atom_id - 1]
        if record.truth is None:
            raise ValueError(f"atom {atom} carries no evidence to retract")
        record.truth = False if atom.predicate.closed_world else None
        if atom.predicate.closed_world:
            self._defaulted.add(atom_id)
        self._bump(atom.predicate.name)
        return atom_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, predicate_name: str, arguments: Sequence[str]) -> Optional[int]:
        """Return the id of an atom, or ``None`` if it was never registered."""
        return self._by_key.get((predicate_name, tuple(arguments)))

    def record(self, atom_id: int) -> AtomRecord:
        if not 1 <= atom_id <= len(self._records):
            raise KeyError(f"unknown atom id {atom_id}")
        return self._records[atom_id - 1]

    def truth(self, atom_id: int) -> Optional[bool]:
        return self.record(atom_id).truth

    def atom(self, atom_id: int) -> GroundAtom:
        return self.record(atom_id).atom

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AtomRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def query_atom_ids(self) -> List[int]:
        """Ids of unknown (non-evidence) atoms — the search variables."""
        return [record.atom_id for record in self._records if record.is_query]

    def evidence_atom_ids(self) -> List[int]:
        return [record.atom_id for record in self._records if record.is_evidence]

    def count_by_predicate(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            name = record.atom.predicate.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def records_for_predicate(self, predicate: Predicate) -> List[AtomRecord]:
        return [
            record
            for record in self._records
            if record.atom.predicate.name == predicate.name
        ]

    def register_all(
        self, atoms: Iterable[Tuple[GroundAtom, Optional[bool]]]
    ) -> List[int]:
        return [self.register(atom, truth) for atom, truth in atoms]
