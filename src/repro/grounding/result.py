"""The output of a grounding run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grounding.atoms import AtomRegistry
from repro.grounding.clause_table import GroundClauseStore


@dataclass
class ClauseGroundingStats:
    """Per first-order-clause grounding statistics.

    ``pruned_bindings`` counts the bindings whose ground clause was already
    satisfied by the evidence (Appendix A.3 pruning); ``intermediate_tuples``
    counts the tuples the clause's relational query pushed through its join
    operators (hash-join build+probe rows, nested-loop comparisons) — the
    state that lives inside the RDBMS rather than the inference process,
    the asymmetry behind the paper's Table 4.
    """

    clause_name: str
    ground_clauses: int
    pruned_bindings: int
    seconds: float
    sql: Optional[str] = None
    intermediate_tuples: int = 0


@dataclass
class GroundingResult:
    """Everything the search phase needs, plus grounding diagnostics."""

    atoms: AtomRegistry
    clauses: GroundClauseStore
    seconds: float = 0.0
    per_clause: List[ClauseGroundingStats] = field(default_factory=list)
    intermediate_tuples: int = 0
    strategy: str = "bottom-up"

    @property
    def ground_clause_count(self) -> int:
        return len(self.clauses)

    @property
    def atom_count(self) -> int:
        return len(self.atoms)

    @property
    def query_atom_count(self) -> int:
        return len(self.atoms.query_atom_ids())

    @property
    def pruned_bindings(self) -> int:
        """Total bindings pruned as satisfied-by-evidence, across clauses."""
        return sum(stats.pruned_bindings for stats in self.per_clause)

    def summary(self) -> Dict[str, float]:
        """A flat dictionary used by reports and benchmarks."""
        return {
            "strategy": self.strategy,
            "seconds": self.seconds,
            "atoms": self.atom_count,
            "query_atoms": self.query_atom_count,
            "ground_clauses": self.ground_clause_count,
            "literals": self.clauses.total_literals(),
            "hard_clauses": self.clauses.hard_clause_count(),
            "pruned_bindings": self.pruned_bindings,
            "intermediate_tuples": self.intermediate_tuples,
        }
