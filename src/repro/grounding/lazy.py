"""Lazy inference / active closure (the paper's Appendix A.3).

Alchemy's lazy inference assumes that most atoms stay false throughout the
search.  A ground clause is *active* if it can be violated by flipping only
*active* atoms (an atom is active once its value can change).  Starting from
the clauses violated by the all-false assignment, the closure alternates
"activate the atoms of active clauses" and "activate the clauses that can be
violated using only active atoms" until a fixed point is reached.

Tuffy implements the same closure; this module applies it to an
already-materialised :class:`~repro.grounding.clause_table.GroundClauseStore`
and returns the active subset, which is what the search phase then keeps in
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set

from repro.grounding.clause_table import GroundClause, GroundClauseStore


@dataclass
class ActiveClosure:
    """The result of the closure: active clauses and active atoms."""

    clauses: List[GroundClause]
    atoms: FrozenSet[int]
    iterations: int

    def as_store(self, merge_duplicates: bool = False) -> GroundClauseStore:
        """Repackage the active clauses as a store for downstream stages."""
        store = GroundClauseStore(merge_duplicates=merge_duplicates)
        for clause in self.clauses:
            store.add(clause.literals, clause.weight, clause.source)
        return store


def _violated_when_all_false(clause: GroundClause) -> bool:
    """Violation status of a clause under the all-false assignment."""
    satisfied = any(literal < 0 for literal in clause.literals)
    if clause.weight >= 0:
        return not satisfied
    return satisfied


def _can_be_violated(clause: GroundClause, active_atoms: Set[int]) -> bool:
    """Whether flipping only active atoms (others false) can violate the clause.

    * For ``weight >= 0`` the clause must be *unsatisfiable* by the inactive
      atoms alone: any negative literal over an inactive (hence false) atom
      permanently satisfies it, so it can never be violated.
    * For ``weight < 0`` the clause is violated when *satisfied*; it can be
      satisfied either by a negative literal over an inactive atom or by any
      literal over an active atom.
    """
    if clause.weight >= 0:
        return all(
            literal > 0 or abs(literal) in active_atoms for literal in clause.literals
        )
    for literal in clause.literals:
        if literal < 0 and abs(literal) not in active_atoms:
            return True
        if abs(literal) in active_atoms:
            return True
    return False


def active_closure(store: GroundClauseStore, max_iterations: int = 100) -> ActiveClosure:
    """Compute the active closure of a ground clause store."""
    active_atoms: Set[int] = set()
    active_clause_ids: Set[int] = set()
    clauses = store.clauses()

    # Seed: clauses violated when every query atom is false.
    for clause in clauses:
        if _violated_when_all_false(clause):
            active_clause_ids.add(clause.clause_id)
            active_atoms.update(clause.atom_ids)

    iterations = 0
    changed = True
    while changed and iterations < max_iterations:
        changed = False
        iterations += 1
        for clause in clauses:
            if clause.clause_id in active_clause_ids:
                continue
            if _can_be_violated(clause, active_atoms):
                active_clause_ids.add(clause.clause_id)
                active_atoms.update(clause.atom_ids)
                changed = True

    active = [clause for clause in clauses if clause.clause_id in active_clause_ids]
    return ActiveClosure(active, frozenset(active_atoms), iterations)
