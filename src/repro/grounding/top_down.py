"""Top-down (nested-loop) grounding — the Alchemy-style baseline.

Instead of compiling each clause into an optimized relational query, the
top-down grounder binds the clause's literals one at a time with nested
loops over the registered atoms of each predicate, in the order the literals
appear in the clause.  This mirrors the Prolog-like strategy the paper
attributes to Alchemy and to the "fixed join order + nested loop join"
lesion setting of Table 6, and it is the baseline against which the
bottom-up grounder's speed-up is measured (Table 2).

The grounder produces exactly the same set of ground clauses as the
bottom-up grounder (a property checked by the test suite); it only pays a
very different cost in time and in intermediate state, which the analytic
memory model records for the Table 4 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grounding.atoms import AtomRecord, AtomRegistry
from repro.grounding.clause_table import GroundClauseStore
from repro.grounding.pruning import (
    LiteralOutcome,
    equality_satisfies_clause,
    literal_outcome,
)
from repro.grounding.result import ClauseGroundingStats, GroundingResult
from repro.logic.clauses import WeightedClause
from repro.logic.literals import Literal
from repro.logic.terms import Constant, Variable
from repro.utils.memory import MemoryModel
from repro.utils.timer import Stopwatch


@dataclass
class TopDownGrounder:
    """Nested-loop grounding over the atom registry."""

    merge_duplicates: bool = True
    memory_model: Optional[MemoryModel] = None

    def ground(
        self,
        clauses: Iterable[WeightedClause],
        atoms: AtomRegistry,
    ) -> GroundingResult:
        clauses = list(clauses)
        store = GroundClauseStore(merge_duplicates=self.merge_duplicates)
        per_clause: List[ClauseGroundingStats] = []
        total = Stopwatch()
        intermediate_tuples = 0
        with total.measure():
            atoms_by_predicate = self._atoms_by_predicate(atoms)
            for clause in clauses:
                stats, bindings = self._ground_clause(clause, atoms_by_predicate, store)
                per_clause.append(stats)
                intermediate_tuples += bindings
        if self.memory_model is not None:
            # Alchemy holds the intermediate grounding state in RAM: charge
            # every partial binding the nested loops materialised, plus the
            # final clause table itself.
            self.memory_model.charge_intermediate(intermediate_tuples, category="grounding")
            self.memory_model.charge_clauses(
                len(store), store.total_literals(), category="clause_table"
            )
            self.memory_model.charge_atoms(len(atoms), category="atoms")
        return GroundingResult(
            atoms=atoms,
            clauses=store,
            seconds=total.total,
            per_clause=per_clause,
            intermediate_tuples=intermediate_tuples,
            strategy="top-down",
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _atoms_by_predicate(self, atoms: AtomRegistry) -> Dict[str, List[AtomRecord]]:
        by_predicate: Dict[str, List[AtomRecord]] = {}
        for record in atoms:
            by_predicate.setdefault(record.atom.predicate.name, []).append(record)
        return by_predicate

    def _ground_clause(
        self,
        clause: WeightedClause,
        atoms_by_predicate: Dict[str, List[AtomRecord]],
        store: GroundClauseStore,
    ) -> Tuple[ClauseGroundingStats, int]:
        stopwatch = Stopwatch()
        produced = 0
        pruned = 0
        bindings_enumerated = 0
        with stopwatch.measure():
            if not clause.literals:
                return (
                    ClauseGroundingStats(clause.name or str(clause), 0, 0, stopwatch.total),
                    0,
                )
            self._check_equality_variables(clause)

            literals = list(clause.literals)

            def recurse(
                index: int,
                binding: Dict[Variable, str],
                collected: List[Tuple[int, Optional[bool], bool]],
            ) -> None:
                nonlocal produced, pruned, bindings_enumerated
                if index == len(literals):
                    outcome = self._finalise(clause, binding, collected, store)
                    if outcome:
                        produced += 1
                    else:
                        pruned += 1
                    return
                literal = literals[index]
                candidates = atoms_by_predicate.get(literal.predicate.name, [])
                for record in candidates:
                    extension = self._match(literal, record, binding)
                    if extension is None:
                        continue
                    bindings_enumerated += 1
                    collected.append((record.atom_id, record.truth, literal.positive))
                    merged = dict(binding)
                    merged.update(extension)
                    recurse(index + 1, merged, collected)
                    collected.pop()

            recurse(0, {}, [])
        stats = ClauseGroundingStats(
            clause_name=clause.name or str(clause),
            ground_clauses=produced,
            pruned_bindings=pruned,
            seconds=stopwatch.total,
            sql=None,
        )
        return stats, bindings_enumerated

    def _check_equality_variables(self, clause: WeightedClause) -> None:
        bound = set()
        for literal in clause.literals:
            bound.update(literal.variables())
        for left, right, _positive in clause.equalities:
            for term in (left, right):
                if isinstance(term, Variable) and term not in bound:
                    raise ValueError(
                        f"equality constraint references unbound variable {term} "
                        f"in clause {clause.name or clause}"
                    )

    def _match(
        self,
        literal: Literal,
        record: AtomRecord,
        binding: Dict[Variable, str],
    ) -> Optional[Dict[Variable, str]]:
        """Try to unify a literal with a registered atom under a binding."""
        extension: Dict[Variable, str] = {}
        values = record.atom.argument_values()
        for argument, value in zip(literal.arguments, values):
            if isinstance(argument, Constant):
                if argument.value != value:
                    return None
            else:
                assert isinstance(argument, Variable)
                existing = binding.get(argument, extension.get(argument))
                if existing is None:
                    extension[argument] = value
                elif existing != value:
                    return None
        return extension

    def _finalise(
        self,
        clause: WeightedClause,
        binding: Dict[Variable, str],
        collected: List[Tuple[int, Optional[bool], bool]],
        store: GroundClauseStore,
    ) -> bool:
        """Apply pruning to a complete binding; returns True if a clause was stored."""
        for left, right, positive in clause.equalities:
            left_value = left.value if isinstance(left, Constant) else binding[left]
            right_value = right.value if isinstance(right, Constant) else binding[right]
            if equality_satisfies_clause(left_value, right_value, positive):
                store.record_satisfied_by_evidence()
                return False
        literals: List[int] = []
        for atom_id, truth, positive in collected:
            outcome = literal_outcome(truth, positive)
            if outcome is LiteralOutcome.SATISFIES:
                store.record_satisfied_by_evidence()
                return False
            if outcome is LiteralOutcome.UNKNOWN:
                literals.append(atom_id if positive else -atom_id)
        return store.add(literals, clause.weight, clause.name) is not None
