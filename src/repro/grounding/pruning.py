"""Shared evidence-pruning helpers used by both grounders.

The rules implemented here are the ones described in Appendix A.3 of the
paper: a ground clause that the evidence already satisfies can be discarded,
and a literal whose atom the evidence has already decided (but which does
not satisfy the clause) can be dropped from the clause.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class LiteralOutcome(Enum):
    """What the evidence says about one literal of a candidate ground clause."""

    UNKNOWN = "unknown"          # the atom is a query atom: keep the literal
    SATISFIES = "satisfies"      # the literal is true in the evidence: prune the clause
    DROPPED = "dropped"          # the literal is false in the evidence: drop it


def literal_outcome(truth: Optional[bool], positive: bool) -> LiteralOutcome:
    """Classify a literal given its atom's evidence truth value."""
    if truth is None:
        return LiteralOutcome.UNKNOWN
    literal_is_true = truth if positive else not truth
    return LiteralOutcome.SATISFIES if literal_is_true else LiteralOutcome.DROPPED


def equality_satisfies_clause(left_value: str, right_value: str, positive: bool) -> bool:
    """Whether a ground (in)equality constraint satisfies its clause.

    A positive constraint (``a = b``) satisfies the clause when the values
    are equal; a negative one (``a != b``) when they differ.
    """
    equal = left_value == right_value
    return equal if positive else not equal
