"""Bottom-up (RDBMS-based) grounding — the paper's Section 3.1.

The grounder materialises one atom table per predicate in the embedded
relational engine, compiles every first-order clause into a conjunctive
query (Algorithm 2) and lets the engine's optimizer choose join order and
join algorithms.  The query results are turned into ground clauses with the
evidence-pruning rules of Appendix A.3 applied.

Each clause's query runs on the executor's resolved *execution backend*
(``auto`` | ``row`` | ``columnar``, see :mod:`repro.rdbms.executor`).  On
the columnar backend the per-literal evidence-outcome logic
(:func:`repro.grounding.pruning.literal_outcome`) is evaluated over whole
aid/truth columns at once and the surviving signed-literal rows are bulk
appended through :meth:`~repro.grounding.clause_table.GroundClauseStore.add_batch`
— no per-row Python work between the relational engine and the clause
store.  Both consumers are bit-for-bit identical: same clauses, same
order, same statistics (the grounding parity suite enforces this).

Delta-grounding
---------------
With ``enable_replay_cache=True`` (the engine session's mode) the grounder
records, per first-order clause, the exact sequence of clause-store events
its query produced (every ``add`` literal tuple and every
satisfied-by-evidence count) together with a snapshot of the per-predicate
registry versions the clause depends on.  On a later ``ground()`` over the
same registry, a clause whose predicates are all unchanged is **replayed**
from that record instead of re-running its relational query; only clauses
touching a changed predicate re-execute.  Replay issues the identical
``add`` sequence, so the resulting store is bit-for-bit identical to a
full reground (``add_batch`` is parity-tested equal to repeated ``add``).
``last_report`` exposes the per-run counters (queries executed vs clauses
replayed, atom tables loaded vs reused) that the session benchmark and the
delta-grounding tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.grounding.atoms import AtomRegistry
from repro.grounding.clause_table import GroundClauseStore
from repro.grounding.compiler import (
    ClauseCompilation,
    GroundingCompiler,
    argument_column,
    predicate_table_name,
)
from repro.grounding.pruning import LiteralOutcome, literal_outcome
from repro.grounding.result import ClauseGroundingStats, GroundingResult
from repro.logic.clauses import WeightedClause
from repro.logic.predicates import Predicate
from repro.rdbms.column_batch import NULL_CODE
from repro.rdbms.database import Database
from repro.rdbms.executor import ColumnarQueryResult, QueryResult
from repro.rdbms.operators import HashJoin, NestedLoopJoin, iter_plan
from repro.rdbms.optimizer import OptimizerOptions
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType
from repro.utils.memory import MemoryModel
from repro.utils.timer import Stopwatch

try:  # gated dependency, mirroring repro.rdbms.column_batch
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]


def predicate_table_schema(predicate: Predicate) -> TableSchema:
    """Schema of the atom table for a predicate: aid, arguments, truth."""
    columns = [("aid", ColumnType.INTEGER)]
    columns.extend(
        (argument_column(position), ColumnType.TEXT) for position in range(predicate.arity)
    )
    columns.append(("truth", ColumnType.TRUTH))
    return TableSchema.of(*columns)


def plan_intermediate_tuples(root) -> int:
    """Tuples pushed through a plan's join operators during one execution.

    Hash joins report build + probe rows, nested-loop joins report pair
    comparisons — the intermediate state a real RDBMS holds on behalf of
    the grounding process (the paper's Table 4 asymmetry).  Both execution
    backends maintain these counters identically.
    """
    total = 0
    for operator in iter_plan(root):
        if isinstance(operator, HashJoin):
            total += operator.build_rows + operator.probe_rows
        elif isinstance(operator, NestedLoopJoin):
            total += operator.comparisons
    return total


@dataclass
class GroundingDeltaReport:
    """Counters of one ``ground()`` run: what re-executed vs replayed."""

    clauses_total: int = 0
    queries_executed: int = 0
    clauses_replayed: int = 0
    atom_tables_loaded: int = 0
    atom_tables_reused: int = 0

    @property
    def is_delta(self) -> bool:
        return self.clauses_replayed > 0


@dataclass
class _ClauseReplay:
    """Cached outcome of one clause's grounding query.

    ``events`` is the ordered clause-store call sequence the query
    produced: ``("add", literal_tuple)`` and ``("satisfied", count)``
    entries, replayed verbatim so the store state is bit-identical to a
    re-executed query.  Validity is pinned to the clause *object*, the
    registry identity, and the per-predicate version snapshot.
    """

    clause: WeightedClause
    registry_token: int
    predicate_versions: Dict[str, int]
    events: List[Tuple[str, object]]
    produced: int
    pruned: int
    sql: Optional[str]
    intermediate_tuples: int


class _RecordingStore:
    """Forwards to a clause store while recording the event stream.

    Only the three mutating entry points the grounding consumers use are
    wrapped; ``add_batch`` rows are recorded as individual ``add`` events
    (the batch-parity suite pins ``add_batch`` == repeated ``add``), so a
    replay through ``add`` reproduces the store bit-for-bit.
    """

    def __init__(self, store: GroundClauseStore) -> None:
        self._store = store
        self.events: List[Tuple[str, object]] = []

    def add(self, literals, weight, source=None):
        self.events.append(("add", tuple(literals)))
        return self._store.add(literals, weight, source)

    def record_satisfied_by_evidence(self, count: int = 1) -> None:
        self.events.append(("satisfied", count))
        self._store.record_satisfied_by_evidence(count)

    def add_batch(self, flat_literals, counts, weight, source=None) -> int:
        flat = [int(value) for value in flat_literals]
        cursor = 0
        for count in counts:
            row = tuple(flat[cursor : cursor + int(count)])
            cursor += int(count)
            self.events.append(("add", row))
        return self._store.add_batch(flat_literals, counts, weight, source)


@dataclass
class BottomUpGrounder:
    """Grounds MLN clauses by running relational queries in the engine.

    Parameters
    ----------
    database:
        The engine instance to use; a fresh one is created when omitted.
    optimizer_options:
        Planner knobs (see :class:`~repro.rdbms.optimizer.OptimizerOptions`);
        the lesion-study benchmark passes the restricted settings here.
    merge_duplicates:
        Merge identical ground clauses by summing weights (the default, and
        what Tuffy does).
    persist_clause_table:
        Also write the resulting clause table into the database, mirroring
        Tuffy's ``C(cid, lits, weight)`` table.
    memory_model:
        Optional analytic memory model; the bottom-up grounder charges only
        the size of the *result* (ground clauses), because intermediate
        join state lives inside the RDBMS, not in the inference process —
        this is the asymmetry behind the paper's Table 4.
    execution_backend:
        ``auto`` | ``row`` | ``columnar``; ``None`` defers to the
        database executor's configured backend.  Resolved per clause query
        (``auto`` engages the columnar engine only above the measured
        table-size crossover).
    enable_replay_cache:
        Record per-clause event streams so later ``ground()`` calls replay
        clauses whose predicates are unchanged (delta-grounding; used by
        :class:`~repro.core.session.EngineSession`).  Off by default — the
        cache holds a copy of the grounding output, which one-shot callers
        should not pay for.
    """

    database: Optional[Database] = None
    optimizer_options: Optional[OptimizerOptions] = None
    merge_duplicates: bool = True
    persist_clause_table: bool = True
    memory_model: Optional[MemoryModel] = None
    execution_backend: Optional[str] = None
    enable_replay_cache: bool = False

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = Database()
        self._compiler = GroundingCompiler()
        self._replay: Dict[int, _ClauseReplay] = {}
        self.last_report: Optional[GroundingDeltaReport] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def ground(
        self,
        clauses: Iterable[WeightedClause],
        atoms: AtomRegistry,
    ) -> GroundingResult:
        """Ground all clauses against the given atom registry."""
        clauses = list(clauses)
        report = GroundingDeltaReport(clauses_total=len(clauses))
        total = Stopwatch()
        with total.measure():
            self._load_atom_tables(clauses, atoms, report)
            store = GroundClauseStore(merge_duplicates=self.merge_duplicates)
            per_clause: List[ClauseGroundingStats] = []
            for index, clause in enumerate(clauses):
                per_clause.append(
                    self._ground_clause_cached(index, clause, atoms, store, report)
                )
            if self.persist_clause_table:
                store.store_in_database(self.database)
        self.last_report = report
        if self.memory_model is not None:
            self.memory_model.charge_clauses(
                len(store), store.total_literals(), category="clause_table"
            )
            self.memory_model.charge_atoms(len(atoms), category="atoms")
        result = GroundingResult(
            atoms=atoms,
            clauses=store,
            seconds=total.total,
            per_clause=per_clause,
            intermediate_tuples=sum(stats.intermediate_tuples for stats in per_clause),
            strategy="bottom-up",
        )
        return result

    def compiled_sql(self, clauses: Iterable[WeightedClause]) -> Dict[str, str]:
        """The SQL text for each clause (for documentation and tests)."""
        statements: Dict[str, str] = {}
        for clause in clauses:
            compilation = self._compiler.compile(clause)
            if compilation.sql is not None:
                statements[clause.name or str(clause)] = compilation.sql
        return statements

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _load_atom_tables(
        self,
        clauses: Sequence[WeightedClause],
        atoms: AtomRegistry,
        report: GroundingDeltaReport,
    ) -> None:
        predicates: Dict[str, Predicate] = {}
        for clause in clauses:
            for predicate in clause.predicates():
                predicates[predicate.name] = predicate
        for predicate in predicates.values():
            table_name = predicate_table_name(predicate)
            schema = predicate_table_schema(predicate)
            # An atom table is a pure function of the registry's records
            # for its predicate, so it (and everything keyed on its
            # version — notably the columnar engine's encoded-column
            # cache) can be reused across ground() calls as long as *that
            # predicate* has not changed.  The stamp pins the source
            # registry and the predicate's own version counter — an
            # evidence delta reloads only the touched predicates' tables;
            # any direct table mutation clears the stamp.
            stamp = (
                "atom-registry",
                atoms.identity_token,
                predicate.name,
                atoms.predicate_version(predicate.name),
            )
            if self.database.has_table(table_name):
                table = self.database.table(table_name)
                if table.contents_stamp == stamp:
                    report.atom_tables_reused += 1
                    continue
                table.truncate()
            else:
                table = self.database.create_table(table_name, schema)
            rows = [
                (record.atom_id, *record.atom.argument_values(), record.truth)
                for record in atoms.records_for_predicate(predicate)
            ]
            self.database.bulk_load(table_name, rows)
            table.stamp_contents(stamp)
            report.atom_tables_loaded += 1

    def _ground_clause_cached(
        self,
        index: int,
        clause: WeightedClause,
        atoms: AtomRegistry,
        store: GroundClauseStore,
        report: GroundingDeltaReport,
    ) -> ClauseGroundingStats:
        """Replay an unchanged clause from cache, or re-run (and record) it."""
        versions = atoms.predicate_versions(
            predicate.name for predicate in clause.predicates()
        )
        if self.enable_replay_cache:
            cached = self._replay.get(index)
            if (
                cached is not None
                and cached.clause is clause
                and cached.registry_token == atoms.identity_token
                and cached.predicate_versions == versions
            ):
                report.clauses_replayed += 1
                return self._replay_clause(clause, cached, store)
        recorder: Optional[_RecordingStore] = None
        target = store
        if self.enable_replay_cache:
            recorder = _RecordingStore(store)
            target = recorder  # type: ignore[assignment]
        stats = self._ground_clause(clause, atoms, target)
        report.queries_executed += 1
        if recorder is not None:
            self._replay[index] = _ClauseReplay(
                clause=clause,
                registry_token=atoms.identity_token,
                predicate_versions=versions,
                events=recorder.events,
                produced=stats.ground_clauses,
                pruned=stats.pruned_bindings,
                sql=stats.sql,
                intermediate_tuples=stats.intermediate_tuples,
            )
        return stats

    def _replay_clause(
        self,
        clause: WeightedClause,
        cached: _ClauseReplay,
        store: GroundClauseStore,
    ) -> ClauseGroundingStats:
        """Re-issue a cached event stream against a fresh store.

        The store ends bit-identical to re-running the query: same ``add``
        calls in the same order with the same literal tuples and weights
        (identical floats, so duplicate-merge sums are unchanged), same
        satisfied-by-evidence count.  The cached statistics are what the
        query would report; only ``seconds`` reflects the (cheap) replay.
        """
        stopwatch = Stopwatch()
        with stopwatch.measure():
            for kind, payload in cached.events:
                if kind == "add":
                    store.add(payload, clause.weight, clause.name)
                else:
                    store.record_satisfied_by_evidence(payload)
        return ClauseGroundingStats(
            clause_name=clause.name or str(clause),
            ground_clauses=cached.produced,
            pruned_bindings=cached.pruned,
            seconds=stopwatch.total,
            sql=cached.sql,
            intermediate_tuples=cached.intermediate_tuples,
        )

    def _ground_clause(
        self,
        clause: WeightedClause,
        atoms: AtomRegistry,
        store: GroundClauseStore,
    ) -> ClauseGroundingStats:
        stopwatch = Stopwatch()
        produced = 0
        pruned = 0
        intermediate = 0
        with stopwatch.measure():
            compilation = self._compiler.compile(clause)
            if compilation.query is None:
                return ClauseGroundingStats(
                    clause_name=clause.name or str(clause),
                    ground_clauses=0,
                    pruned_bindings=0,
                    seconds=stopwatch.total,
                    sql=None,
                )
            planned = self.database.plan(compilation.query, self.optimizer_options)
            backend = self.database.executor.resolve_backend(
                planned, self.execution_backend
            )
            if backend == "columnar":
                result = self.database.executor.execute_batch(planned)
                produced, pruned = self._consume_columns(
                    clause, compilation, result, store
                )
            else:
                result = self.database.executor.execute(planned, backend="row")
                produced, pruned = self._consume_rows(clause, compilation, result, store)
            intermediate = plan_intermediate_tuples(planned.root)
        return ClauseGroundingStats(
            clause_name=clause.name or str(clause),
            ground_clauses=produced,
            pruned_bindings=pruned,
            seconds=stopwatch.total,
            sql=compilation.sql,
            intermediate_tuples=intermediate,
        )

    def _consume_rows(
        self,
        clause: WeightedClause,
        compilation: ClauseCompilation,
        result: QueryResult,
        store: GroundClauseStore,
    ) -> Tuple[int, int]:
        """Row-at-a-time consumer: the executable specification.

        Matches the top-down grounder's accounting: ``produced`` counts
        bindings that stored (or merged into) a ground clause, ``pruned``
        counts bindings decided entirely by the evidence — satisfied
        outcomes, clauses that became empty after dropping decided
        literals, and tautologies.
        """
        produced = 0
        pruned = 0
        aid_positions = [
            result.schema.position(literal.aid_output) for literal in compilation.literals
        ]
        truth_positions = [
            result.schema.position(literal.truth_output) for literal in compilation.literals
        ]
        signs = [literal.literal.positive for literal in compilation.literals]
        for row in result.rows:
            literals: List[int] = []
            satisfied = False
            for aid_position, truth_position, positive in zip(
                aid_positions, truth_positions, signs
            ):
                outcome = literal_outcome(row[truth_position], positive)
                if outcome is LiteralOutcome.SATISFIES:
                    satisfied = True
                    break
                if outcome is LiteralOutcome.UNKNOWN:
                    atom_id = row[aid_position]
                    literals.append(atom_id if positive else -atom_id)
            if satisfied:
                store.record_satisfied_by_evidence()
                pruned += 1
                continue
            if store.add(literals, clause.weight, clause.name) is not None:
                produced += 1
            else:
                pruned += 1
        return produced, pruned

    def _consume_columns(
        self,
        clause: WeightedClause,
        compilation: ClauseCompilation,
        result: ColumnarQueryResult,
        store: GroundClauseStore,
    ) -> Tuple[int, int]:
        """Batched consumer: literal outcomes over whole aid/truth columns.

        Bit-for-bit identical to :meth:`_consume_rows`: rows are consumed
        in result order, per-row literals in literal order, and the store
        sees the same ``add`` sequence (via ``add_batch``) and the same
        satisfied-by-evidence count.
        """
        row_count = len(result)
        if row_count == 0:
            return 0, 0
        encoder = result.encoder
        # The evidence truth values are True/False/None; their dictionary
        # codes (MISSING when a value never occurs) classify every literal
        # of every row with two comparisons per literal column.
        true_code = encoder.lookup(True)
        false_code = encoder.lookup(False)
        satisfied = np.zeros(row_count, dtype=bool)
        unknown_columns: List["np.ndarray"] = []
        signed_columns: List["np.ndarray"] = []
        for literal in compilation.literals:
            truth_codes = result.column_codes(literal.truth_output)
            positive = literal.literal.positive
            satisfied |= truth_codes == (true_code if positive else false_code)
            unknown_columns.append(truth_codes == NULL_CODE)
            aids = np.asarray(
                encoder.decode(result.column_codes(literal.aid_output)),
                dtype=np.int64,
            )
            signed_columns.append(aids if positive else -aids)
        satisfied_count = int(satisfied.sum())
        if satisfied_count:
            store.record_satisfied_by_evidence(satisfied_count)
        if satisfied_count == row_count:
            return 0, satisfied_count
        alive = ~satisfied
        # (row, literal) matrices; row-major flattening preserves the
        # row-order/literal-order nesting of the row consumer.
        keep = np.stack(unknown_columns, axis=1)[alive]
        signed = np.stack(signed_columns, axis=1)[alive]
        produced = store.add_batch(
            signed[keep],
            keep.sum(axis=1),
            clause.weight,
            clause.name,
        )
        return produced, row_count - produced
