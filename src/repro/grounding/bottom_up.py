"""Bottom-up (RDBMS-based) grounding — the paper's Section 3.1.

The grounder materialises one atom table per predicate in the embedded
relational engine, compiles every first-order clause into a conjunctive
query (Algorithm 2) and lets the engine's optimizer choose join order and
join algorithms.  The query results are turned into ground clauses with the
evidence-pruning rules of Appendix A.3 applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.grounding.atoms import AtomRegistry
from repro.grounding.clause_table import GroundClauseStore
from repro.grounding.compiler import (
    ClauseCompilation,
    GroundingCompiler,
    argument_column,
    predicate_table_name,
)
from repro.grounding.pruning import LiteralOutcome, literal_outcome
from repro.grounding.result import ClauseGroundingStats, GroundingResult
from repro.logic.clauses import WeightedClause
from repro.logic.predicates import Predicate
from repro.rdbms.database import Database
from repro.rdbms.optimizer import OptimizerOptions
from repro.rdbms.schema import TableSchema
from repro.rdbms.types import ColumnType
from repro.utils.memory import MemoryModel
from repro.utils.timer import Stopwatch


def predicate_table_schema(predicate: Predicate) -> TableSchema:
    """Schema of the atom table for a predicate: aid, arguments, truth."""
    columns = [("aid", ColumnType.INTEGER)]
    columns.extend(
        (argument_column(position), ColumnType.TEXT) for position in range(predicate.arity)
    )
    columns.append(("truth", ColumnType.TRUTH))
    return TableSchema.of(*columns)


@dataclass
class BottomUpGrounder:
    """Grounds MLN clauses by running relational queries in the engine.

    Parameters
    ----------
    database:
        The engine instance to use; a fresh one is created when omitted.
    optimizer_options:
        Planner knobs (see :class:`~repro.rdbms.optimizer.OptimizerOptions`);
        the lesion-study benchmark passes the restricted settings here.
    merge_duplicates:
        Merge identical ground clauses by summing weights (the default, and
        what Tuffy does).
    persist_clause_table:
        Also write the resulting clause table into the database, mirroring
        Tuffy's ``C(cid, lits, weight)`` table.
    memory_model:
        Optional analytic memory model; the bottom-up grounder charges only
        the size of the *result* (ground clauses), because intermediate
        join state lives inside the RDBMS, not in the inference process —
        this is the asymmetry behind the paper's Table 4.
    """

    database: Optional[Database] = None
    optimizer_options: Optional[OptimizerOptions] = None
    merge_duplicates: bool = True
    persist_clause_table: bool = True
    memory_model: Optional[MemoryModel] = None

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = Database()
        self._compiler = GroundingCompiler()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def ground(
        self,
        clauses: Iterable[WeightedClause],
        atoms: AtomRegistry,
    ) -> GroundingResult:
        """Ground all clauses against the given atom registry."""
        clauses = list(clauses)
        total = Stopwatch()
        with total.measure():
            self._load_atom_tables(clauses, atoms)
            store = GroundClauseStore(merge_duplicates=self.merge_duplicates)
            per_clause: List[ClauseGroundingStats] = []
            for clause in clauses:
                per_clause.append(self._ground_clause(clause, atoms, store))
            if self.persist_clause_table:
                store.store_in_database(self.database)
        if self.memory_model is not None:
            self.memory_model.charge_clauses(
                len(store), store.total_literals(), category="clause_table"
            )
            self.memory_model.charge_atoms(len(atoms), category="atoms")
        result = GroundingResult(
            atoms=atoms,
            clauses=store,
            seconds=total.total,
            per_clause=per_clause,
            intermediate_tuples=0,
            strategy="bottom-up",
        )
        return result

    def compiled_sql(self, clauses: Iterable[WeightedClause]) -> Dict[str, str]:
        """The SQL text for each clause (for documentation and tests)."""
        statements: Dict[str, str] = {}
        for clause in clauses:
            compilation = self._compiler.compile(clause)
            if compilation.sql is not None:
                statements[clause.name or str(clause)] = compilation.sql
        return statements

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _load_atom_tables(
        self, clauses: Sequence[WeightedClause], atoms: AtomRegistry
    ) -> None:
        predicates: Dict[str, Predicate] = {}
        for clause in clauses:
            for predicate in clause.predicates():
                predicates[predicate.name] = predicate
        for predicate in predicates.values():
            table_name = predicate_table_name(predicate)
            schema = predicate_table_schema(predicate)
            if self.database.has_table(table_name):
                self.database.table(table_name).truncate()
            else:
                self.database.create_table(table_name, schema)
            rows = [
                (record.atom_id, *record.atom.argument_values(), record.truth)
                for record in atoms.records_for_predicate(predicate)
            ]
            self.database.bulk_load(table_name, rows)

    def _ground_clause(
        self,
        clause: WeightedClause,
        atoms: AtomRegistry,
        store: GroundClauseStore,
    ) -> ClauseGroundingStats:
        stopwatch = Stopwatch()
        produced = 0
        with stopwatch.measure():
            compilation = self._compiler.compile(clause)
            if compilation.query is None:
                return ClauseGroundingStats(
                    clause_name=clause.name or str(clause),
                    ground_clauses=0,
                    pruned_bindings=0,
                    seconds=stopwatch.total,
                    sql=None,
                )
            result = self.database.execute(compilation.query, self.optimizer_options)
            aid_positions = [
                result.schema.position(literal.aid_output) for literal in compilation.literals
            ]
            truth_positions = [
                result.schema.position(literal.truth_output) for literal in compilation.literals
            ]
            signs = [literal.literal.positive for literal in compilation.literals]
            for row in result.rows:
                literals: List[int] = []
                satisfied = False
                for aid_position, truth_position, positive in zip(
                    aid_positions, truth_positions, signs
                ):
                    outcome = literal_outcome(row[truth_position], positive)
                    if outcome is LiteralOutcome.SATISFIES:
                        satisfied = True
                        break
                    if outcome is LiteralOutcome.UNKNOWN:
                        atom_id = row[aid_position]
                        literals.append(atom_id if positive else -atom_id)
                if satisfied:
                    store.record_satisfied_by_evidence()
                    continue
                store.add(literals, clause.weight, clause.name)
                produced += 1
        return ClauseGroundingStats(
            clause_name=clause.name or str(clause),
            ground_clauses=produced,
            pruned_bindings=0,
            seconds=stopwatch.total,
            sql=compilation.sql,
        )
