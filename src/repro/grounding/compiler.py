"""Compiling an MLN clause to a relational query (the paper's Algorithm 2).

For a clause ``F = l_1 v ... v l_k`` the compiled query joins the atom table
of each literal's predicate (one alias ``t0 ... tk-1`` per literal), with:

* a WHERE predicate per literal implementing the evidence pruning of
  Appendix A.3 — a positive literal requires ``truth IS DISTINCT FROM TRUE``
  (rows already true in the evidence would satisfy the clause, so their
  groundings can be discarded), a negative literal requires
  ``truth IS DISTINCT FROM FALSE``;
* join conditions equating the argument columns of literals that share a
  variable;
* equality filters for constant arguments; and
* conditions derived from the clause's ``=`` / ``!=`` constraints (a ground
  clause whose equality constraint already holds is satisfied and therefore
  pruned).

The SELECT list carries, for every literal, the atom id and the truth value
so the grounder can drop literals that the evidence has already decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.logic.clauses import WeightedClause
from repro.logic.literals import Literal
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Variable
from repro.rdbms.optimizer import ConjunctiveQuery


class ClauseCompilationError(ValueError):
    """Raised when a clause cannot be expressed as a conjunctive query."""


@dataclass
class CompiledLiteral:
    """Metadata the grounder needs for one literal of a compiled clause."""

    index: int
    alias: str
    literal: Literal
    aid_output: str
    truth_output: str


@dataclass
class ClauseCompilation:
    """The result of compiling one first-order clause.

    ``query`` is ``None`` when the clause is trivially satisfied for every
    binding (e.g. a constant equality constraint that always holds), in
    which case grounding produces nothing for it.
    """

    clause: WeightedClause
    query: Optional[ConjunctiveQuery]
    literals: List[CompiledLiteral] = field(default_factory=list)
    trivially_satisfied: bool = False

    @property
    def sql(self) -> Optional[str]:
        if self.query is None:
            return None
        from repro.rdbms.sql import render_select

        return render_select(self.query)


def predicate_table_name(predicate: Predicate) -> str:
    """Name of the atom table backing a predicate."""
    return predicate.table_name()


def argument_column(position: int) -> str:
    """Column name of the ``position``-th argument in an atom table."""
    return f"arg{position}"


class GroundingCompiler:
    """Compiles weighted clauses into conjunctive queries over atom tables."""

    def compile(self, clause: WeightedClause) -> ClauseCompilation:
        """Compile a single clause (Algorithm 2 in the paper)."""
        if not clause.literals:
            # A clause that is only equality constraints has no groundings
            # over atom tables; it is either trivially satisfied or a
            # constant violation, both of which the grounder handles.
            return ClauseCompilation(clause, None, [], trivially_satisfied=True)
        query = ConjunctiveQuery()
        compiled_literals: List[CompiledLiteral] = []
        variable_columns: Dict[Variable, str] = {}

        for index, literal in enumerate(clause.literals):
            alias = f"t{index}"
            query.add_relation(alias, predicate_table_name(literal.predicate))
            self._add_pruning_filter(query, alias, literal)
            self._bind_arguments(query, alias, literal, variable_columns)
            aid_output = f"aid_{index}"
            truth_output = f"truth_{index}"
            query.add_output(f"{alias}.aid", aid_output)
            query.add_output(f"{alias}.truth", truth_output)
            compiled_literals.append(
                CompiledLiteral(index, alias, literal, aid_output, truth_output)
            )

        trivially_satisfied = self._add_equality_constraints(
            query, clause, variable_columns
        )
        if trivially_satisfied:
            return ClauseCompilation(clause, None, compiled_literals, trivially_satisfied=True)
        return ClauseCompilation(clause, query, compiled_literals)

    def compile_all(self, clauses) -> List[ClauseCompilation]:
        return [self.compile(clause) for clause in clauses]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _add_pruning_filter(
        self, query: ConjunctiveQuery, alias: str, literal: Literal
    ) -> None:
        satisfied_value = True if literal.positive else False
        query.add_constant_filter(f"{alias}.truth", "is_distinct_from", satisfied_value)

    def _bind_arguments(
        self,
        query: ConjunctiveQuery,
        alias: str,
        literal: Literal,
        variable_columns: Dict[Variable, str],
    ) -> None:
        for position, argument in enumerate(literal.arguments):
            column = f"{alias}.{argument_column(position)}"
            if isinstance(argument, Constant):
                query.add_constant_filter(column, "=", argument.value)
            elif isinstance(argument, Variable):
                first_column = variable_columns.get(argument)
                if first_column is None:
                    variable_columns[argument] = column
                elif first_column.split(".", 1)[0] == alias:
                    # Same-alias repetition (e.g. r(x, x)): a plain column
                    # comparison, not a join condition.
                    query.add_column_comparison(first_column, "=", column)
                else:
                    query.add_join(first_column, column)
            else:  # pragma: no cover - the term union is closed
                raise ClauseCompilationError(f"unsupported term {argument!r}")

    def _add_equality_constraints(
        self,
        query: ConjunctiveQuery,
        clause: WeightedClause,
        variable_columns: Dict[Variable, str],
    ) -> bool:
        """Add conditions for ``=`` / ``!=`` constraints.

        Returns ``True`` when a constant constraint makes the clause
        trivially satisfied for every binding (no groundings needed).
        """
        for left, right, positive in clause.equalities:
            left_is_variable = isinstance(left, Variable)
            right_is_variable = isinstance(right, Variable)
            if left_is_variable and left not in variable_columns:
                raise ClauseCompilationError(
                    f"equality constraint references unbound variable {left}"
                )
            if right_is_variable and right not in variable_columns:
                raise ClauseCompilationError(
                    f"equality constraint references unbound variable {right}"
                )
            if not left_is_variable and not right_is_variable:
                equal = left.value == right.value
                # A satisfied constraint satisfies the whole (disjunctive)
                # clause; an unsatisfied one simply drops out.
                if (equal and positive) or (not equal and not positive):
                    return True
                continue
            # The clause is *satisfied* when the constraint holds, so we keep
            # only the bindings where it does not hold.
            if left_is_variable and right_is_variable:
                operator = "!=" if positive else "="
                query.add_column_comparison(
                    variable_columns[left], operator, variable_columns[right]
                )
            else:
                variable, constant = (left, right) if left_is_variable else (right, left)
                operator = "!=" if positive else "="
                query.add_constant_filter(
                    variable_columns[variable], operator, constant.value
                )
        return False
