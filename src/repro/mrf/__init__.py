"""The ground Markov Random Field (MRF).

The grounding phase outputs a weighted SAT problem; viewed as a hypergraph
whose nodes are atoms and whose hyperedges are ground clauses, this is the
Markov Random Field of the MLN (paper, Appendix A.2).  This package provides
the graph structure, the cost function the search minimises, union-find based
connected-component detection (paper, Section 3.3) and persistence of the
component assignment back into the relational engine.
"""

from repro.mrf.components import ComponentDecomposition, connected_components
from repro.mrf.cost import assignment_cost, violated_clauses
from repro.mrf.graph import MRF
from repro.mrf.union_find import UnionFind

__all__ = [
    "ComponentDecomposition",
    "MRF",
    "UnionFind",
    "assignment_cost",
    "connected_components",
    "violated_clauses",
]
