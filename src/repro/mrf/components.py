"""Connected-component detection over the ground MRF (paper, Section 3.3).

Components are found by a single scan of the clause table that merges the
atoms of every clause in a union-find structure — exactly the procedure the
paper describes.  The decomposition exposes each component as its own
:class:`~repro.mrf.graph.MRF` plus a per-component size, which is what the
bin-packing batch loader and the component-aware search consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.grounding.clause_table import GroundClause, GroundClauseStore
from repro.mrf.graph import MRF
from repro.mrf.union_find import UnionFind


@dataclass
class ComponentDecomposition:
    """The set of connected components of an MRF."""

    components: List[MRF] = field(default_factory=list)
    atom_to_component: Dict[int, int] = field(default_factory=dict)

    @property
    def component_count(self) -> int:
        return len(self.components)

    def component_of_atom(self, atom_id: int) -> int:
        return self.atom_to_component[atom_id]

    def sizes(self) -> List[int]:
        return [component.size() for component in self.components]

    def largest(self) -> Optional[MRF]:
        if not self.components:
            return None
        return max(self.components, key=lambda component: component.size())

    def sorted_by_size(self, descending: bool = True) -> List[MRF]:
        return sorted(self.components, key=lambda component: component.size(), reverse=descending)


def connected_components(source: MRF | GroundClauseStore) -> ComponentDecomposition:
    """Split an MRF (or a clause store) into its connected components."""
    mrf = source if isinstance(source, MRF) else MRF.from_store(source)
    union_find = UnionFind(mrf.atom_ids)
    for clause in mrf.clauses:
        # Order-preserving dedup: set iteration order is hash-dependent, and
        # the merge order feeds union-find root selection.
        atom_ids = list(dict.fromkeys(clause.atom_ids))
        for left, right in zip(atom_ids, atom_ids[1:]):
            union_find.union(left, right)

    groups = union_find.groups()
    clause_groups: Dict[object, List[GroundClause]] = {root: [] for root in groups}
    for clause in mrf.clauses:
        root = union_find.find(clause.atom_ids[0])
        clause_groups[root].append(clause)

    decomposition = ComponentDecomposition()
    # Deterministic ordering: components sorted by their smallest atom id.
    ordered_roots = sorted(groups, key=lambda root: min(groups[root]))
    for index, root in enumerate(ordered_roots):
        component = MRF.from_clauses(clause_groups[root], extra_atoms=groups[root])
        decomposition.components.append(component)
        for atom_id in groups[root]:
            decomposition.atom_to_component[atom_id] = index
    return decomposition
