"""Union-find (disjoint set union) with path compression and union by size.

The paper detects MRF components by maintaining "an in-memory union-find
structure over the nodes" while scanning the clause table once; this is that
structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Disjoint sets over arbitrary hashable elements."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register an element as its own singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the representative of the element's set (path compression)."""
        if element not in self._parent:
            raise KeyError(f"unknown element {element!r}")
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, left: Hashable, right: Hashable) -> Hashable:
        """Merge the sets containing the two elements; returns the new root."""
        self.add(left)
        self.add(right)
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return left_root
        if self._size[left_root] < self._size[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._size[left_root] += self._size[right_root]
        return left_root

    def connected(self, left: Hashable, right: Hashable) -> bool:
        return self.find(left) == self.find(right)

    def component_size(self, element: Hashable) -> int:
        return self._size[self.find(element)]

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """All sets, keyed by their representative."""
        result: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            result.setdefault(self.find(element), []).append(element)
        return result

    def component_count(self) -> int:
        return sum(1 for element, parent in self._parent.items() if self.find(element) == element)
