"""The MRF graph structure consumed by the search phase."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grounding.clause_table import GroundClause, GroundClauseStore


class MRFFlatView:
    """Flat, cache-friendly arrays describing an MRF's clause/atom structure.

    The WalkSAT kernel (:class:`repro.inference.state.SearchState`) indexes
    atoms and clauses by dense *positions* rather than ids.  This view maps
    between the two and precomputes, once per MRF, the flattened relations
    the kernel's hot loops need:

    * ``clause_codes`` — the clause → literal relation as per-clause
      tuples of signed codes: a literal over atom position ``p`` is the
      int ``+(p + 1)`` (positive occurrence) or ``-(p + 1)`` (negative),
      so satisfied-count initialisation iterates plain ints.
    * ``adjacency`` — the atom → clause relation as per-atom tuples of
      ``(clause_index, positive)`` pairs, entries in clause order (which
      the kernel relies on for reproducible violated-set ordering).  The
      per-flip loops unpack these pre-built pairs, reusing the stored
      index object; a signed-code encoding here would allocate a fresh
      int per entry when decoding (measurably slower in CPython).
    * ``clause_atom_positions`` — the distinct atom positions of each
      clause in first-occurrence order, deduplicated once here instead of
      on every WalkSAT step.

    A view is built lazily by :meth:`MRF.flat_view` and cached; it assumes
    the MRF is not mutated afterwards.  All buffers are read-only shared
    state: every :class:`SearchState` over the same MRF reuses one view.
    """

    __slots__ = (
        "atom_ids",
        "atom_position",
        "clause_codes",
        "clause_atom_positions",
        "adjacency",
    )

    @classmethod
    def from_parts(
        cls,
        atom_ids: List[int],
        atom_position: Dict[int, int],
        clause_codes: Sequence[Tuple[int, ...]],
        clause_atom_positions: Sequence[Tuple[int, ...]],
        adjacency: Sequence[Sequence[Tuple[int, bool]]],
    ) -> "MRFFlatView":
        """Assemble a view from prebuilt pieces, bypassing the per-literal scan.

        Callers (the SampleSAT constraint pool) derive the pieces from an
        existing view over the same atom universe, so the invariants — codes
        reference positions in ``atom_ids`` order, adjacency entries appear
        in clause order — must already hold.  All arguments are adopted
        without copying and must be treated as read-only afterwards.
        """
        view = cls.__new__(cls)
        view.atom_ids = atom_ids
        view.atom_position = atom_position
        view.clause_codes = clause_codes
        view.clause_atom_positions = clause_atom_positions
        view.adjacency = adjacency
        return view

    def __init__(self, mrf: "MRF") -> None:
        self.atom_ids: List[int] = list(mrf.atom_ids)
        position = {atom_id: index for index, atom_id in enumerate(self.atom_ids)}
        self.atom_position: Dict[int, int] = position

        clause_codes: List[Tuple[int, ...]] = []
        clause_positions: List[Tuple[int, ...]] = []
        adjacency_lists: List[List[Tuple[int, bool]]] = [[] for _ in self.atom_ids]
        for clause_index, clause in enumerate(mrf.clauses):
            codes: List[int] = []
            distinct: List[int] = []
            for literal in clause.literals:
                atom_position = position[abs(literal)]
                codes.append(atom_position + 1 if literal > 0 else -(atom_position + 1))
                if atom_position not in distinct:
                    distinct.append(atom_position)
                adjacency_lists[atom_position].append((clause_index, literal > 0))
            clause_codes.append(tuple(codes))
            clause_positions.append(tuple(distinct))

        self.clause_codes: Tuple[Tuple[int, ...], ...] = tuple(clause_codes)
        self.clause_atom_positions: Tuple[Tuple[int, ...], ...] = tuple(clause_positions)
        self.adjacency: Tuple[Tuple[Tuple[int, bool], ...], ...] = tuple(
            tuple(entries) for entries in adjacency_lists
        )


@dataclass
class MRF:
    """A ground MRF: atoms (nodes) and weighted ground clauses (hyperedges).

    ``atom_ids`` is the set of query-atom ids appearing in the clauses (plus
    any isolated atoms explicitly added).  Adjacency from atom to the clauses
    that mention it is precomputed because WalkSAT needs it on every flip.
    """

    clauses: List[GroundClause] = field(default_factory=list)
    atom_ids: List[int] = field(default_factory=list)
    _adjacency: Dict[int, List[int]] = field(default_factory=dict, repr=False)
    _flat_view: Optional[MRFFlatView] = field(default=None, repr=False, compare=False)
    # Lazily-built numpy structure shared by every vectorized search state
    # over this MRF (owned by repro.inference.vector_kernel, cached here so
    # its lifetime matches the MRF's, like _flat_view).
    _vector_view: Optional[object] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_store(
        cls, store: GroundClauseStore, extra_atoms: Iterable[int] = ()
    ) -> "MRF":
        clauses = store.clauses()
        atom_ids = set(store.atom_ids())
        atom_ids.update(extra_atoms)
        mrf = cls(clauses=clauses, atom_ids=sorted(atom_ids))
        mrf._build_adjacency()
        return mrf

    @classmethod
    def from_clauses(
        cls, clauses: Sequence[GroundClause], extra_atoms: Iterable[int] = ()
    ) -> "MRF":
        atom_ids: Set[int] = set()
        for clause in clauses:
            atom_ids.update(clause.atom_ids)
        atom_ids.update(extra_atoms)
        mrf = cls(clauses=list(clauses), atom_ids=sorted(atom_ids))
        mrf._build_adjacency()
        return mrf

    def _build_adjacency(self) -> None:
        self._adjacency = {atom_id: [] for atom_id in self.atom_ids}
        for index, clause in enumerate(self.clauses):
            # Order-preserving dedup (literal order), not set order.
            for atom_id in dict.fromkeys(clause.atom_ids):
                self._adjacency.setdefault(atom_id, []).append(index)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def atom_count(self) -> int:
        return len(self.atom_ids)

    @property
    def clause_count(self) -> int:
        return len(self.clauses)

    def total_literals(self) -> int:
        return sum(len(clause.literals) for clause in self.clauses)

    def size(self) -> int:
        """The size measure used by the partitioner (atoms + literals)."""
        return self.atom_count + self.total_literals()

    def flat_view(self) -> MRFFlatView:
        """The flat-array view of this MRF, built lazily and cached.

        The view (and everything derived from it) assumes the clause list is
        no longer mutated once the first search state has been constructed.
        """
        if self._flat_view is None:
            self._flat_view = MRFFlatView(self)
        return self._flat_view

    def clauses_of_atom(self, atom_id: int) -> List[int]:
        """Indices (into ``clauses``) of the clauses mentioning an atom."""
        return self._adjacency.get(atom_id, [])

    def degree(self, atom_id: int) -> int:
        return len(self._adjacency.get(atom_id, ()))

    def total_soft_weight(self) -> float:
        return sum(abs(clause.weight) for clause in self.clauses if not clause.is_hard)

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def subgraph(self, atom_subset: Iterable[int]) -> "MRF":
        """The induced sub-MRF: clauses all of whose atoms are in the subset."""
        subset = set(atom_subset)
        clauses = [
            clause
            for clause in self.clauses
            if all(atom_id in subset for atom_id in clause.atom_ids)
        ]
        return MRF.from_clauses(clauses, extra_atoms=subset)

    def cut_clauses(self, atom_subset: Iterable[int]) -> List[GroundClause]:
        """Clauses spanning the subset boundary (some atoms in, some out)."""
        subset = set(atom_subset)
        result = []
        for clause in self.clauses:
            inside = sum(1 for atom_id in clause.atom_ids if atom_id in subset)
            if 0 < inside < len(set(clause.atom_ids)):
                result.append(clause)
        return result

    def neighbors(self, atom_id: int) -> FrozenSet[int]:
        """Atoms sharing at least one clause with the given atom."""
        neighbors: Set[int] = set()
        for clause_index in self._adjacency.get(atom_id, ()):
            neighbors.update(self.clauses[clause_index].atom_ids)
        neighbors.discard(atom_id)
        return frozenset(neighbors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MRF(atoms={self.atom_count}, clauses={self.clause_count})"
