"""The MRF graph structure consumed by the search phase."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grounding.clause_table import GroundClause, GroundClauseStore


@dataclass
class MRF:
    """A ground MRF: atoms (nodes) and weighted ground clauses (hyperedges).

    ``atom_ids`` is the set of query-atom ids appearing in the clauses (plus
    any isolated atoms explicitly added).  Adjacency from atom to the clauses
    that mention it is precomputed because WalkSAT needs it on every flip.
    """

    clauses: List[GroundClause] = field(default_factory=list)
    atom_ids: List[int] = field(default_factory=list)
    _adjacency: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    @classmethod
    def from_store(
        cls, store: GroundClauseStore, extra_atoms: Iterable[int] = ()
    ) -> "MRF":
        clauses = store.clauses()
        atom_ids = set(store.atom_ids())
        atom_ids.update(extra_atoms)
        mrf = cls(clauses=clauses, atom_ids=sorted(atom_ids))
        mrf._build_adjacency()
        return mrf

    @classmethod
    def from_clauses(
        cls, clauses: Sequence[GroundClause], extra_atoms: Iterable[int] = ()
    ) -> "MRF":
        atom_ids: Set[int] = set()
        for clause in clauses:
            atom_ids.update(clause.atom_ids)
        atom_ids.update(extra_atoms)
        mrf = cls(clauses=list(clauses), atom_ids=sorted(atom_ids))
        mrf._build_adjacency()
        return mrf

    def _build_adjacency(self) -> None:
        self._adjacency = {atom_id: [] for atom_id in self.atom_ids}
        for index, clause in enumerate(self.clauses):
            for atom_id in set(clause.atom_ids):
                self._adjacency.setdefault(atom_id, []).append(index)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def atom_count(self) -> int:
        return len(self.atom_ids)

    @property
    def clause_count(self) -> int:
        return len(self.clauses)

    def total_literals(self) -> int:
        return sum(len(clause.literals) for clause in self.clauses)

    def size(self) -> int:
        """The size measure used by the partitioner (atoms + literals)."""
        return self.atom_count + self.total_literals()

    def clauses_of_atom(self, atom_id: int) -> List[int]:
        """Indices (into ``clauses``) of the clauses mentioning an atom."""
        return self._adjacency.get(atom_id, [])

    def degree(self, atom_id: int) -> int:
        return len(self._adjacency.get(atom_id, ()))

    def total_soft_weight(self) -> float:
        return sum(abs(clause.weight) for clause in self.clauses if not clause.is_hard)

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def subgraph(self, atom_subset: Iterable[int]) -> "MRF":
        """The induced sub-MRF: clauses all of whose atoms are in the subset."""
        subset = set(atom_subset)
        clauses = [
            clause
            for clause in self.clauses
            if all(atom_id in subset for atom_id in clause.atom_ids)
        ]
        return MRF.from_clauses(clauses, extra_atoms=subset)

    def cut_clauses(self, atom_subset: Iterable[int]) -> List[GroundClause]:
        """Clauses spanning the subset boundary (some atoms in, some out)."""
        subset = set(atom_subset)
        result = []
        for clause in self.clauses:
            inside = sum(1 for atom_id in clause.atom_ids if atom_id in subset)
            if 0 < inside < len(set(clause.atom_ids)):
                result.append(clause)
        return result

    def neighbors(self, atom_id: int) -> FrozenSet[int]:
        """Atoms sharing at least one clause with the given atom."""
        neighbors: Set[int] = set()
        for clause_index in self._adjacency.get(atom_id, ()):
            neighbors.update(self.clauses[clause_index].atom_ids)
        neighbors.discard(atom_id)
        return frozenset(neighbors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MRF(atoms={self.atom_count}, clauses={self.clause_count})"
