"""The MLN cost function over truth assignments (paper, Equation 1).

``cost(I) = sum over violated ground clauses of |weight|``, where a clause
with positive weight is violated when unsatisfied and a clause with negative
weight is violated when satisfied.  Hard clauses contribute ``inf`` when
violated, which MAP search treats as "never acceptable".
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.grounding.clause_table import GroundClause
from repro.mrf.graph import MRF


def _truth_of(assignment: Mapping[int, bool], atom_id: int) -> bool:
    """Truth of an atom under an assignment; missing atoms default to False."""
    return bool(assignment.get(atom_id, False))


def clause_satisfied(clause: GroundClause, assignment: Mapping[int, bool]) -> bool:
    """Whether the clause (a disjunction) is satisfied under the assignment."""
    for literal in clause.literals:
        value = _truth_of(assignment, abs(literal))
        if (literal > 0 and value) or (literal < 0 and not value):
            return True
    return False


def clause_violated(clause: GroundClause, assignment: Mapping[int, bool]) -> bool:
    """Violation in the paper's sense (sign-aware)."""
    satisfied = clause_satisfied(clause, assignment)
    return (not satisfied) if clause.weight >= 0 else satisfied


def assignment_cost(
    clauses: Iterable[GroundClause] | MRF,
    assignment: Mapping[int, bool],
    hard_as_infinite: bool = True,
    hard_penalty: float = 1e6,
) -> float:
    """Total cost of an assignment.

    With ``hard_as_infinite`` (the default) a violated hard clause makes the
    cost infinite; otherwise it contributes ``hard_penalty``, which is how
    the search scores candidate flips without drowning in infinities.
    """
    clause_list = clauses.clauses if isinstance(clauses, MRF) else clauses
    total = 0.0
    for clause in clause_list:
        if not clause_violated(clause, assignment):
            continue
        if clause.is_hard:
            if hard_as_infinite:
                return math.inf
            total += hard_penalty
        else:
            total += abs(clause.weight)
    return total


def violated_clauses(
    clauses: Iterable[GroundClause] | MRF, assignment: Mapping[int, bool]
) -> List[GroundClause]:
    """The violated clauses themselves (used by tests and diagnostics)."""
    clause_list = clauses.clauses if isinstance(clauses, MRF) else clauses
    return [clause for clause in clause_list if clause_violated(clause, assignment)]


def cost_decomposes_over_components(
    components: Sequence[MRF], assignment: Mapping[int, bool]
) -> float:
    """Sum of per-component costs; equals the global cost when the components
    partition the clause set (the identity the paper's Section 3.3 relies on)."""
    return sum(
        assignment_cost(component, assignment, hard_as_infinite=False)
        for component in components
    )


def all_false_assignment(mrf: MRF) -> Dict[int, bool]:
    """The all-false starting assignment over the MRF's atoms."""
    return {atom_id: False for atom_id in mrf.atom_ids}
